// Tests for the distributed campaign machinery (sim/campaign): shard
// ownership and merge byte-determinism across shard x thread counts, the
// claims-file work-stealing protocol (exactly-once under concurrent
// workers, solo worker drains every foreign backlog), merge accounting for
// missing cells, shard-journal torn-tail recovery, journal shard metadata,
// and the obs:: counter surface of a fleet run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/campaign.hpp"

namespace ivnet {
namespace {

std::atomic<int> g_calls{0};

// Hashes the evaluator should stall on (simulating a straggler shard).
std::mutex g_slow_mutex;
std::set<std::uint64_t> g_slow_hashes;

void set_slow_hashes(std::set<std::uint64_t> hashes) {
  std::lock_guard<std::mutex> lock(g_slow_mutex);
  g_slow_hashes = std::move(hashes);
}

bool is_slow(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(g_slow_mutex);
  return g_slow_hashes.count(hash) != 0;
}

std::atomic<int> g_slow_ms{120};

// Deterministic synthetic evaluator; optionally slow for selected hashes.
std::string shard_eval(const CellSpec& spec) {
  g_calls.fetch_add(1);
  if (is_slow(spec.content_hash())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(g_slow_ms.load()));
  }
  const double a = spec.param_num("a", 0.0);
  const double b = spec.param_num("b", 0.0);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"sum\":%.10g,\"prod\":%.10g}", a + b,
                a * b);
  return buf;
}

CellSpec cell(double a, double b) {
  CellSpec spec("shardsynth");
  spec.set("a", a).set("b", b);
  return spec;
}

/// A spec whose unique cells land on every one of `n_shards` shards (at
/// least `per_shard` each) — ownership is content_hash % n_shards, so we
/// keep minting cells until the layout balances. The two params vary
/// independently: FNV-1a's low bits track byte parity, so bumping the same
/// digit in both params would cancel and pin every cell to one shard.
CampaignSpec balanced_spec(std::size_t n_shards, std::size_t per_shard) {
  CampaignSpec spec;
  spec.name = "shardtest";
  std::vector<std::size_t> owned(n_shards, 0);
  auto filled = [&] {
    for (std::size_t count : owned)
      if (count < per_shard) return false;
    return true;
  };
  for (std::size_t i = 0; !filled(); ++i) {
    EXPECT_LT(spec.cells.size(), 64u) << "hash layout failed to balance";
    if (spec.cells.size() >= 64) break;
    CellSpec c = cell(0.5 + 1.25 * static_cast<double>(i),
                      0.37 * static_cast<double>(i * i + 3));
    owned[c.content_hash() % n_shards]++;
    spec.cells.push_back(std::move(c));
  }
  return spec;
}

std::string temp_base(const std::string& name) {
  return testing::TempDir() + "campaign_shard_" + name + ".jsonl";
}

void remove_shard_files(const std::string& base, std::size_t n_shards) {
  for (std::size_t k = 0; k < n_shards; ++k) {
    std::remove(shard_journal_path(base, k).c_str());
  }
  std::remove(shard_claims_path(base).c_str());
}

class CampaignShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_cell_evaluator("shardsynth", shard_eval);
    CellCache::instance().clear();
    g_calls.store(0);
    set_slow_hashes({});
    g_slow_ms.store(120);
  }
  void TearDown() override {
    CellCache::instance().clear();
    set_slow_hashes({});
    set_parallel_threads(0);
    obs::install_null();
  }
};

TEST_F(CampaignShardTest, MergedFleetIsByteIdenticalAtAnyShardAndThreadCount) {
  const CampaignSpec spec = balanced_spec(3, 2);
  const std::string reference = run_campaign(spec).results_json();

  const std::string base = temp_base("matrix");
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      set_parallel_threads(threads);
      CellCache::instance().clear();
      remove_shard_files(base, shards);
      ShardOptions options{base, shards, /*fresh=*/true};
      const CampaignReport report = run_campaign_sharded(spec, options);
      EXPECT_EQ(report.results_json(), reference)
          << "diverged at " << shards << " shards x " << threads
          << " threads";
    }
    remove_shard_files(base, shards);
  }
}

TEST_F(CampaignShardTest, FastWorkerStealsStragglerCellsExactlyOnce) {
  const CampaignSpec spec = balanced_spec(2, 3);
  const std::string reference = run_campaign(spec).results_json();

  std::set<std::uint64_t> unique;
  std::set<std::uint64_t> slow;  // every cell shard 1 owns stalls 120 ms
  for (const auto& c : spec.cells) {
    const std::uint64_t hash = c.content_hash();
    unique.insert(hash);
    if (hash % 2 == 1) slow.insert(hash);
  }
  set_slow_hashes(std::move(slow));

  obs::MetricsRegistry registry;
  obs::install({&registry, nullptr});
  CellCache::instance().clear();
  g_calls.store(0);
  // Concurrent pool_run submissions serialize on the shared pool, so the
  // two in-process workers need serial cell loops to truly overlap.
  set_parallel_threads(1);

  const std::string base = temp_base("steal");
  remove_shard_files(base, 2);
  const ShardOptions options{base, 2, /*fresh=*/true};
  reset_campaign_claims(options);

  ShardWorkerReport reports[2];
  std::thread fast([&] { reports[0] = run_campaign_shard(spec, options, 0); });
  std::thread slow_worker(
      [&] { reports[1] = run_campaign_shard(spec, options, 1); });
  fast.join();
  slow_worker.join();
  obs::install_null();

  // Exactly-once: the claims file arbitrates, whatever the interleaving.
  EXPECT_EQ(static_cast<std::size_t>(g_calls.load()), unique.size());
  // Worker 0 drains its fast cells and then steals from the straggler.
  EXPECT_GE(reports[0].cells_stolen, 1u);
  EXPECT_EQ(reports[0].cells_computed + reports[1].cells_computed,
            unique.size());
  EXPECT_GE(registry.counter("campaign.cells.stolen").value(), 1u);

  const ShardMergeReport merged = merge_campaign_shards(spec, options);
  EXPECT_TRUE(merged.complete());
  EXPECT_GE(merged.cells_stolen, 1u);
  EXPECT_EQ(merged.report.results_json(), reference);
  remove_shard_files(base, 2);
}

TEST_F(CampaignShardTest, SoloWorkerStealsEveryForeignCell) {
  const CampaignSpec spec = balanced_spec(3, 1);
  const std::string reference = run_campaign(spec).results_json();
  CellCache::instance().clear();
  g_calls.store(0);

  const std::string base = temp_base("solo");
  remove_shard_files(base, 3);
  const ShardOptions options{base, 3, /*fresh=*/true};
  reset_campaign_claims(options);

  // Only shard 1 shows up for work: it must compute its own cells AND
  // steal both absent shards' entire backlogs.
  const ShardWorkerReport report = run_campaign_shard(spec, options, 1);
  std::set<std::uint64_t> unique;
  for (const auto& c : spec.cells) unique.insert(c.content_hash());
  EXPECT_EQ(report.cells_computed, unique.size());
  EXPECT_EQ(report.cells_stolen, unique.size() - report.cells_owned);
  EXPECT_GE(report.cells_stolen, 1u);

  const ShardMergeReport merged = merge_campaign_shards(spec, options);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.report.results_json(), reference);
  remove_shard_files(base, 3);
}

TEST_F(CampaignShardTest, MergeCountsMissingCellsUntilEveryShardReports) {
  const CampaignSpec spec = balanced_spec(3, 1);
  std::set<std::uint64_t> unique;
  for (const auto& c : spec.cells) unique.insert(c.content_hash());

  const std::string base = temp_base("missing");
  remove_shard_files(base, 3);
  const ShardOptions options{base, 3, /*fresh=*/false};

  // No shard has journaled anything: every unique cell is missing.
  ShardMergeReport merged = merge_campaign_shards(spec, options);
  EXPECT_FALSE(merged.complete());
  EXPECT_EQ(merged.cells_missing, unique.size());

  // Journal exactly one cell by hand; the gap shrinks by one.
  std::FILE* file = std::fopen(shard_journal_path(base, 0).c_str(), "wb");
  ASSERT_NE(file, nullptr);
  detail::append_journal_record(file, spec.cells[0],
                                spec.cells[0].content_hash(),
                                "{\"sum\":1.5,\"prod\":0.5}");
  std::fclose(file);
  merged = merge_campaign_shards(spec, options);
  EXPECT_FALSE(merged.complete());
  EXPECT_EQ(merged.cells_missing, unique.size() - 1);
  remove_shard_files(base, 3);
}

TEST_F(CampaignShardTest, TornShardJournalTailRecomputesOnlyTheLostCell) {
  const CampaignSpec spec = balanced_spec(2, 2);
  const std::string reference = run_campaign(spec).results_json();

  const std::string base = temp_base("torn");
  remove_shard_files(base, 2);
  ShardOptions options{base, 2, /*fresh=*/true};
  CellCache::instance().clear();
  run_campaign_sharded(spec, options);

  // Drop shard 0's last durable record and leave a torn half-line in its
  // place — the tail a SIGKILL mid-fwrite leaves behind.
  const std::string shard0 = shard_journal_path(base, 0);
  std::string content;
  {
    std::ifstream in(shard0, std::ios::binary);
    ASSERT_TRUE(in.good());
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(content.empty());
  const std::size_t cut = content.rfind('\n', content.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(shard0, std::ios::binary | std::ios::trunc);
    out << content.substr(0, cut + 1) << "{\"hash\":\"01ab";
  }

  CellCache::instance().clear();
  g_calls.store(0);
  options.fresh = false;  // resume generation
  const CampaignReport report = run_campaign_sharded(spec, options);
  EXPECT_EQ(g_calls.load(), 1) << "only the torn-away cell recomputes";
  EXPECT_EQ(report.results_json(), reference);
  remove_shard_files(base, 2);
}

TEST_F(CampaignShardTest, ShardJournalsCarryOwnershipMetadata) {
  const CampaignSpec spec = balanced_spec(2, 1);
  const std::string base = temp_base("meta");
  remove_shard_files(base, 2);
  const ShardOptions options{base, 2, /*fresh=*/true};
  CellCache::instance().clear();
  run_campaign_sharded(spec, options);

  std::size_t records = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    for (const JournalEntry& entry :
         read_campaign_journal(shard_journal_path(base, k))) {
      ++records;
      EXPECT_EQ(entry.shard, k) << "journal writer must stamp its shard";
      EXPECT_GE(entry.seconds, 0.0);
      EXPECT_FALSE(entry.result_json.empty());
    }
  }
  std::set<std::uint64_t> unique;
  for (const auto& c : spec.cells) unique.insert(c.content_hash());
  EXPECT_EQ(records, unique.size());
  remove_shard_files(base, 2);
}

TEST_F(CampaignShardTest, ObsCountersSurfaceFleetTraffic) {
  const CampaignSpec spec = balanced_spec(2, 2);
  std::set<std::uint64_t> slow;  // a few ms per cell so t_s lands > 0
  for (const auto& c : spec.cells) slow.insert(c.content_hash());
  set_slow_hashes(std::move(slow));
  g_slow_ms.store(3);

  obs::MetricsRegistry registry;
  obs::install({&registry, nullptr});
  const std::string base = temp_base("obs");
  remove_shard_files(base, 2);
  const ShardOptions options{base, 2, /*fresh=*/true};
  CellCache::instance().clear();
  run_campaign_sharded(spec, options);
  obs::install_null();

  std::set<std::uint64_t> unique;
  for (const auto& c : spec.cells) unique.insert(c.content_hash());
  EXPECT_EQ(registry.counter("campaign.shards").value(), 2u);
  EXPECT_EQ(registry.counter("campaign.cells.merged").value(), unique.size());
  EXPECT_EQ(registry.counter("campaign.cells.missing").value(), 0u);
  const std::string snapshot = registry.snapshot_json();
  EXPECT_NE(snapshot.find("campaign.cell.seconds"), std::string::npos);
  EXPECT_NE(snapshot.find("campaign.shard0.cell.seconds"), std::string::npos)
      << "merge must replay per-shard compute-time histograms";
  EXPECT_NE(snapshot.find("campaign.shard1.cell.seconds"), std::string::npos);
  remove_shard_files(base, 2);
}

TEST_F(CampaignShardTest, ShardedRunValidatesItsArguments) {
  const CampaignSpec spec = balanced_spec(2, 1);
  ShardOptions options{"", 3, false};
  EXPECT_THROW(run_campaign_sharded(spec, options), std::invalid_argument);
  const std::string base = temp_base("args");
  EXPECT_THROW(run_campaign_shard(spec, {base, 2, false}, 2),
               std::invalid_argument);
  EXPECT_THROW(run_campaign_shard(spec, {base, 0, false}, 0),
               std::invalid_argument);
  remove_shard_files(base, 2);
}

}  // namespace
}  // namespace ivnet
