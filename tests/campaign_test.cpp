// Tests for ivnet/sim/campaign: cell canonicalization and content hashing,
// journal crash-consistency (torn-tail skipping), kill-and-resume byte
// determinism, the process-wide memo cache (duplicate and cross-campaign
// sharing), thread-count invariance, the obs:: counter surface, and the
// journal durability contract (failed appends throw; raw \r bytes
// round-trip through the binary-mode reader). The distributed fleet lives
// in campaign_shard_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/campaign.hpp"

namespace ivnet {
namespace {

std::atomic<int> g_synth_calls{0};

// Deterministic synthetic evaluator: result depends only on the spec.
std::string synth_eval(const CellSpec& spec) {
  g_synth_calls.fetch_add(1);
  const double a = spec.param_num("a", 0.0);
  const double b = spec.param_num("b", 0.0);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"sum\":%.10g,\"prod\":%.10g}", a + b,
                a * b);
  return buf;
}

CellSpec synth_cell(double a, double b) {
  CellSpec cell("synth");
  cell.set("a", a).set("b", b);
  return cell;
}

std::string temp_journal(const std::string& name) {
  return testing::TempDir() + "campaign_" + name + ".jsonl";
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_cell_evaluator("synth", synth_eval);
    CellCache::instance().clear();
    g_synth_calls.store(0);
  }
  void TearDown() override {
    CellCache::instance().clear();
    set_parallel_threads(0);
    obs::install_null();
  }
};

TEST_F(CampaignTest, CanonicalJsonIsSortedAndFixedFormat) {
  CellSpec cell("gain");
  // Insertion order must not matter: params are map-sorted.
  cell.set("trials", std::size_t{150});
  cell.set("antennas", std::size_t{8});
  cell.set("depth_m", 0.05);
  EXPECT_EQ(cell.canonical_json(),
            "{\"kind\":\"gain\",\"params\":{\"antennas\":\"8\","
            "\"depth_m\":\"0.05\",\"trials\":\"150\"}}");

  CellSpec reordered("gain");
  reordered.set("depth_m", 0.05);
  reordered.set("antennas", std::size_t{8});
  reordered.set("trials", std::size_t{150});
  EXPECT_EQ(cell.content_hash(), reordered.content_hash());
}

TEST_F(CampaignTest, ContentHashSeparatesKindAndParams) {
  const CellSpec a = synth_cell(1.0, 2.0);
  const CellSpec b = synth_cell(1.0, 3.0);
  CellSpec c = synth_cell(1.0, 2.0);
  c.kind = "other";
  EXPECT_NE(a.content_hash(), b.content_hash());
  EXPECT_NE(a.content_hash(), c.content_hash());
  EXPECT_EQ(a.content_hash(), synth_cell(1.0, 2.0).content_hash());
}

TEST_F(CampaignTest, UnknownKindThrowsBeforeAnyWork) {
  CampaignSpec spec;
  spec.name = "bad";
  spec.cells.push_back(synth_cell(1.0, 2.0));
  spec.cells.emplace_back("no_such_kind");
  EXPECT_THROW(run_campaign(spec), std::invalid_argument);
  EXPECT_EQ(g_synth_calls.load(), 0) << "must throw before evaluating cells";
}

TEST_F(CampaignTest, ComputesCellsAndReportsSources) {
  CampaignSpec spec;
  spec.name = "basic";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0)};
  const CampaignReport report = run_campaign(spec);
  EXPECT_EQ(report.cells_total, 2u);
  EXPECT_EQ(report.cells_computed, 2u);
  EXPECT_EQ(report.cells_resumed, 0u);
  EXPECT_EQ(report.cache_hits, 0u);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.outcomes[0].result_json, "{\"sum\":3,\"prod\":2}");
  EXPECT_EQ(report.outcomes[1].result_json, "{\"sum\":7,\"prod\":12}");
  EXPECT_EQ(report.outcomes[0].source, CellSource::kComputed);
  // Final JSON splices result text verbatim in spec order.
  const std::string json = report.results_json();
  EXPECT_NE(json.find("\"campaign\":\"basic\""), std::string::npos);
  EXPECT_LT(json.find("{\"sum\":3,\"prod\":2}"),
            json.find("{\"sum\":7,\"prod\":12}"));
}

TEST_F(CampaignTest, DuplicateCellsEvaluateOnce) {
  CampaignSpec spec;
  spec.name = "dup";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(5.0, 6.0),
                synth_cell(1.0, 2.0)};
  const CampaignReport report = run_campaign(spec);
  EXPECT_EQ(g_synth_calls.load(), 2);
  EXPECT_EQ(report.cells_computed, 2u);
  EXPECT_EQ(report.cache_hits, 1u);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.outcomes[0].result_json, report.outcomes[2].result_json);
  EXPECT_EQ(report.outcomes[2].source, CellSource::kCache);
}

TEST_F(CampaignTest, MemoCacheSharesCellsAcrossCampaigns) {
  CampaignSpec first;
  first.name = "first";
  first.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0)};
  run_campaign(first);
  EXPECT_EQ(g_synth_calls.load(), 2);

  CampaignSpec second;
  second.name = "second";
  second.cells = {synth_cell(3.0, 4.0), synth_cell(9.0, 9.0)};
  const CampaignReport report = run_campaign(second);
  EXPECT_EQ(g_synth_calls.load(), 3) << "shared cell must not recompute";
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.cells_computed, 1u);
  EXPECT_EQ(report.outcomes[0].source, CellSource::kCache);
}

TEST_F(CampaignTest, JournalHoldsOneFsyncedRecordPerCell) {
  const std::string path = temp_journal("write");
  std::remove(path.c_str());
  CampaignSpec spec;
  spec.name = "journaled";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0)};
  const CampaignReport report = run_campaign(spec, {path, /*fresh=*/true});
  const auto entries = read_campaign_journal(path);
  ASSERT_EQ(entries.size(), 2u);
  // Journal order is evaluation order (not necessarily spec order); match
  // by hash.
  for (const auto& outcome : report.outcomes) {
    bool found = false;
    for (const auto& entry : entries) {
      if (entry.hash == outcome.hash) {
        EXPECT_EQ(entry.result_json, outcome.result_json);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "cell missing from journal";
  }
  std::remove(path.c_str());
}

TEST_F(CampaignTest, JournalSkipsTornAndCorruptLines) {
  const std::string path = temp_journal("torn");
  {
    std::ofstream out(path, std::ios::binary);
    // Good record.
    out << "{\"hash\":\"00000000000000ab\",\"cell\":{\"kind\":\"synth\","
           "\"params\":{}},\"result\":{\"sum\":1}}\n";
    // Corrupt: unbalanced braces (but newline-terminated).
    out << "{\"hash\":\"00000000000000cd\",\"cell\":{\"kind\":\"synth\","
           "\"params\":{}},\"result\":{\"sum\":2}\n";
    // Torn tail: no trailing newline (SIGKILL mid-write).
    out << "{\"hash\":\"00000000000000ef\",\"cell\":{\"kind\":\"syn";
  }
  const auto entries = read_campaign_journal(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].hash, 0xabu);
  EXPECT_EQ(entries[0].result_json, "{\"sum\":1}");
  std::remove(path.c_str());
}

TEST_F(CampaignTest, MissingJournalReadsEmpty) {
  EXPECT_TRUE(read_campaign_journal(temp_journal("nonexistent")).empty());
}

TEST_F(CampaignTest, ResumeReplaysJournalWithoutRecomputing) {
  const std::string path = temp_journal("resume");
  CampaignSpec spec;
  spec.name = "resumable";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0),
                synth_cell(5.0, 6.0)};
  const std::string full = run_campaign(spec, {path, true}).results_json();
  EXPECT_EQ(g_synth_calls.load(), 3);

  // A resumed run in a fresh process: empty memo cache, journal on disk.
  CellCache::instance().clear();
  const CampaignReport resumed = run_campaign(spec, {path, false});
  EXPECT_EQ(g_synth_calls.load(), 3) << "resume must not recompute";
  EXPECT_EQ(resumed.cells_resumed, 3u);
  EXPECT_EQ(resumed.cells_computed, 0u);
  EXPECT_EQ(resumed.outcomes[0].source, CellSource::kJournal);
  EXPECT_EQ(resumed.results_json(), full) << "resume must be byte-identical";
  std::remove(path.c_str());
}

TEST_F(CampaignTest, KilledRunResumesByteIdentical) {
  // Simulate a SIGKILL mid-campaign: keep the first journal record intact,
  // tear the second mid-line, then resume at a different thread count.
  const std::string path = temp_journal("killed");
  CampaignSpec spec;
  spec.name = "killable";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0),
                synth_cell(5.0, 6.0)};
  set_parallel_threads(1);
  const std::string uninterrupted = run_campaign(spec, {path, true}).results_json();

  std::string journal;
  {
    std::ifstream in(path, std::ios::binary);
    journal.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  const std::size_t first_nl = journal.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << journal.substr(0, first_nl + 1);
    out << journal.substr(first_nl + 1, 17);  // torn second record
  }

  CellCache::instance().clear();
  g_synth_calls.store(0);
  set_parallel_threads(8);
  const CampaignReport resumed = run_campaign(spec, {path, false});
  EXPECT_EQ(resumed.cells_resumed, 1u);
  EXPECT_EQ(resumed.cells_computed, 2u);
  EXPECT_EQ(g_synth_calls.load(), 2);
  EXPECT_EQ(resumed.results_json(), uninterrupted)
      << "kill-and-resume must reproduce the uninterrupted bytes";
  // The repaired journal is again a complete checkpoint.
  EXPECT_EQ(read_campaign_journal(path).size(), 3u);
  std::remove(path.c_str());
}

TEST_F(CampaignTest, ResultsInvariantAcrossThreadCounts) {
  CampaignSpec spec;
  spec.name = "threads";
  for (double a = 0.0; a < 6.0; a += 1.0) {
    spec.cells.push_back(synth_cell(a, 2.0 * a + 1.0));
  }
  set_parallel_threads(1);
  const std::string baseline = run_campaign(spec).results_json();
  for (std::size_t threads : {2u, 8u}) {
    CellCache::instance().clear();
    set_parallel_threads(threads);
    EXPECT_EQ(run_campaign(spec).results_json(), baseline)
        << "thread count " << threads;
  }
}

TEST_F(CampaignTest, FreshOptionTruncatesJournal) {
  const std::string path = temp_journal("fresh");
  CampaignSpec spec;
  spec.name = "fresh";
  spec.cells = {synth_cell(1.0, 2.0)};
  run_campaign(spec, {path, true});
  CellCache::instance().clear();
  g_synth_calls.store(0);
  const CampaignReport report = run_campaign(spec, {path, /*fresh=*/true});
  EXPECT_EQ(report.cells_resumed, 0u);
  EXPECT_EQ(report.cells_computed, 1u);
  EXPECT_EQ(g_synth_calls.load(), 1);
  EXPECT_EQ(read_campaign_journal(path).size(), 1u);
  std::remove(path.c_str());
}

TEST_F(CampaignTest, ObsCountersSurfaceCacheAndResumeTraffic) {
  obs::MetricsRegistry registry;
  obs::install({&registry, nullptr});
  const std::string path = temp_journal("metrics");
  CampaignSpec spec;
  spec.name = "metered";
  spec.cells = {synth_cell(1.0, 2.0), synth_cell(3.0, 4.0),
                synth_cell(1.0, 2.0)};  // one duplicate -> one cache hit
  run_campaign(spec, {path, true});
  CellCache::instance().clear();
  run_campaign(spec, {path, false});  // all three resumed
  obs::install_null();

  EXPECT_EQ(registry.counter("campaign.cells.total").value(), 6u);
  EXPECT_EQ(registry.counter("campaign.cells.computed").value(), 2u);
  EXPECT_EQ(registry.counter("campaign.cells.resumed").value(), 3u);
  EXPECT_EQ(registry.counter("campaign.cache.hits").value(), 1u);
  EXPECT_EQ(registry.counter("campaign.cache.misses").value(), 2u);
  const std::string snapshot = registry.snapshot_json();
  EXPECT_NE(snapshot.find("campaign.cells.resumed"), std::string::npos);
  EXPECT_NE(snapshot.find("campaign.cell.seconds"), std::string::npos)
      << "per-cell latency histogram missing from snapshot";
  std::remove(path.c_str());
}

TEST_F(CampaignTest, Fig9AndFig13ShareGainAnchorCells) {
  const CampaignSpec fig9 = fig9_campaign(10);
  const CampaignSpec fig13 = fig13_campaign(10, 2);
  ASSERT_EQ(fig9.cells.size(), 10u);
  // Fig. 13 carries the Fig. 9 water-tank anchors at N=1 and N=8: the spec
  // objects hash identically, so the memo cache evaluates them once.
  std::size_t shared = 0;
  for (const auto& a : fig9.cells) {
    for (const auto& b : fig13.cells) {
      if (a.content_hash() == b.content_hash()) ++shared;
    }
  }
  EXPECT_EQ(shared, 2u);
  // Every built-in campaign names only registered evaluator kinds.
  register_builtin_cell_evaluators();
  for (const auto* spec : {&fig9, &fig13}) {
    for (const auto& cell : spec->cells) {
      EXPECT_TRUE(has_cell_evaluator(cell.kind)) << cell.kind;
    }
  }
  for (const auto& cell : x13_campaign(2).cells) {
    EXPECT_TRUE(has_cell_evaluator(cell.kind)) << cell.kind;
  }
}

TEST_F(CampaignTest, BuiltinGainCellIsDeterministicAcrossThreads) {
  register_builtin_cell_evaluators();
  CampaignSpec spec;
  spec.name = "gain_smoke";
  spec.cells.push_back(fig9_campaign(/*gain_trials=*/4).cells[0]);
  set_parallel_threads(1);
  const std::string one = run_campaign(spec).results_json();
  CellCache::instance().clear();
  set_parallel_threads(8);
  const std::string eight = run_campaign(spec).results_json();
  EXPECT_EQ(one, eight);
  EXPECT_NE(one.find("\"p50\":"), std::string::npos);
}

// --- Journal durability and byte fidelity ----------------------------------

TEST_F(CampaignTest, JournalAppendToUnwritableFileThrows) {
  // A cell must never count as journaled when the line did not land: a
  // short fwrite (here: the stream is open read-only) has to surface as an
  // exception, not a silent "durable" success.
  const std::string path = temp_journal("readonly");
  { std::ofstream out(path, std::ios::binary); }
  std::FILE* readonly = std::fopen(path.c_str(), "rb");
  ASSERT_NE(readonly, nullptr);
  const CellSpec cell = synth_cell(1.0, 2.0);
  EXPECT_THROW(detail::append_journal_record(readonly, cell,
                                             cell.content_hash(), "{}"),
               std::runtime_error);
  std::fclose(readonly);
  std::remove(path.c_str());
}

TEST_F(CampaignTest, RunSurfacesJournalFlushFailures) {
  // /dev/full accepts the fopen and fails at flush time (ENOSPC) — the
  // run must throw instead of reporting cells whose journal lines never
  // hit the disk. fresh=true skips the resume read (/dev/full reads as an
  // endless stream of zeros).
  std::FILE* probe = std::fopen("/dev/full", "we");
  if (probe == nullptr) GTEST_SKIP() << "/dev/full unavailable";
  std::fclose(probe);
  set_parallel_threads(1);
  CampaignSpec spec;
  spec.name = "enospc";
  spec.cells = {synth_cell(41.0, 1.0)};
  EXPECT_THROW(run_campaign(spec, {"/dev/full", /*fresh=*/true}),
               std::runtime_error);
}

TEST_F(CampaignTest, JournalRoundTripsCarriageReturnBytes) {
  // The reader opens in binary mode; a text-mode reader could eat \r
  // bytes and desynchronize the resume offsets from the on-disk tail.
  register_cell_evaluator("crlf", [](const CellSpec&) {
    return std::string("{\"s\":\"a\rb\",\"n\":1}");
  });
  CellSpec cell("crlf");
  cell.set("seed", std::size_t{1});
  CampaignSpec spec;
  spec.name = "crlf";
  spec.cells = {cell};
  const std::string path = temp_journal("crlf");
  const std::string reference = run_campaign(spec, {path, true}).results_json();

  const auto entries = read_campaign_journal(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].result_json.find('\r'), std::string::npos)
      << "raw \\r bytes must round-trip through the journal";
  EXPECT_EQ(entries[0].result_json, "{\"s\":\"a\rb\",\"n\":1}");

  // A torn tail right after the \r-bearing record must truncate at the
  // correct byte offset: resume replays the record, recomputes nothing,
  // and the output stays byte-identical.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"hash\":\"fe";
  }
  CellCache::instance().clear();
  const CampaignReport resumed = run_campaign(spec, {path, false});
  EXPECT_EQ(resumed.cells_resumed, 1u);
  EXPECT_EQ(resumed.cells_computed, 0u);
  EXPECT_EQ(resumed.results_json(), reference);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ivnet
