// Tests for ivnet/cib — the paper's core contribution. Covers the frequency
// plan and Eq. 9 constraint, the Eq. 6 objective, the optimizer, baselines,
// and the two-stage extension.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/cib/transmitter.hpp"
#include "ivnet/cib/two_stage.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/gen2/commands.hpp"

namespace ivnet {
namespace {

TEST(FlatnessConstraint, PaperNumbers) {
  // Sec. 3.6: alpha = 0.5, delta-t = 800 us -> RMS limit 199 Hz.
  const FlatnessConstraint c;
  EXPECT_NEAR(c.rms_limit_hz(), 199.0, 1.0);
}

TEST(FrequencyPlan, PaperDefaultMatchesSec5) {
  const auto plan = FrequencyPlan::paper_default();
  EXPECT_EQ(plan.num_antennas(), 10u);
  EXPECT_DOUBLE_EQ(plan.center_hz(), 915e6);
  EXPECT_DOUBLE_EQ(plan.offsets_hz().front(), 0.0);
  EXPECT_DOUBLE_EQ(plan.offsets_hz().back(), 137.0);
  EXPECT_DOUBLE_EQ(plan.carrier_hz(1), 915e6 + 7.0);
}

TEST(FrequencyPlan, PaperDefaultSatisfiesEq9) {
  const auto plan = FrequencyPlan::paper_default();
  EXPECT_TRUE(plan.integer_offsets());
  EXPECT_LT(plan.rms_offset_hz(), FlatnessConstraint{}.rms_limit_hz());
  EXPECT_TRUE(plan.satisfies(FlatnessConstraint{}));
}

TEST(FrequencyPlan, PeriodIsOneSecondForPaperSet) {
  // gcd(7, 20, 49, 68, 73, 90, 113, 121, 137) = 1 -> period 1 s.
  EXPECT_DOUBLE_EQ(FrequencyPlan::paper_default().period_s(), 1.0);
  // All-even offsets halve the period.
  const FrequencyPlan even(915e6, {0, 10, 20, 40});
  EXPECT_DOUBLE_EQ(even.period_s(), 0.1);
}

TEST(FrequencyPlan, NonIntegerOffsetsViolate) {
  const FrequencyPlan plan(915e6, {0.0, 7.5});
  EXPECT_FALSE(plan.integer_offsets());
  EXPECT_FALSE(plan.satisfies(FlatnessConstraint{}));
}

TEST(FrequencyPlan, RmsViolationDetected) {
  const FrequencyPlan hot(915e6, {0, 500, 600, 700});
  EXPECT_FALSE(hot.satisfies(FlatnessConstraint{}));
}

TEST(FrequencyPlan, TruncatedKeepsPrefix) {
  const auto plan = FrequencyPlan::paper_default().truncated(3);
  EXPECT_EQ(plan.num_antennas(), 3u);
  EXPECT_EQ(plan.offsets_hz(), (std::vector<double>{0, 7, 20}));
}

TEST(Objective, EnvelopePeaksAtNWithAlignedPhases) {
  const std::vector<double> offsets = {0, 7, 20, 49, 68};
  const std::vector<double> phases(5, 0.0);
  EXPECT_NEAR(peak_envelope(offsets, phases, 1.0), 5.0, 1e-3);
}

TEST(Objective, PeakNeverExceedsN) {
  Rng rng(1);
  const std::vector<double> offsets = {0, 7, 20, 49, 68};
  for (int k = 0; k < 50; ++k) {
    std::vector<double> phases(5);
    for (auto& p : phases) p = rng.phase();
    EXPECT_LE(peak_envelope(offsets, phases, 1.0), 5.0 + 1e-6);
  }
}

TEST(Objective, ExpectedPeakBetweenSqrtNAndN) {
  Rng rng(2);
  const auto plan = FrequencyPlan::paper_default();
  const double e = expected_peak_amplitude(plan.offsets_hz(), 64, rng);
  EXPECT_GT(e, std::sqrt(10.0));  // better than incoherent
  EXPECT_LE(e, 10.0);             // bounded by coherent
  EXPECT_GT(e, 0.6 * 10.0);       // a good set gets most of the way
}

TEST(Objective, PowerGainScalesRoughlyN2) {
  // Sec. 3.4: maximum power gain N^2; a good set should reach >half of it.
  Rng rng(3);
  for (std::size_t n : {2u, 5u, 10u}) {
    const auto plan = FrequencyPlan::paper_default().truncated(n);
    const double g = expected_peak_power_gain(plan.offsets_hz(), 64, rng);
    EXPECT_GT(g, 0.5 * static_cast<double>(n * n)) << n;
    EXPECT_LE(g, static_cast<double>(n * n) + 1e-6) << n;
  }
}

TEST(Objective, SingleToneHasUnitEnvelope) {
  const std::vector<double> offsets = {0.0};
  const std::vector<double> phases = {1.2};
  const auto env = cib_envelope(offsets, phases, {}, 1.0, 64);
  for (double v : env) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(Objective, ConductionFractionDecreasesWithThreshold) {
  Rng rng(4);
  const auto plan = FrequencyPlan::paper_default();
  const double at_low =
      expected_conduction_fraction(plan.offsets_hz(), 1.0, 16, rng);
  const double at_high =
      expected_conduction_fraction(plan.offsets_hz(), 6.0, 16, rng);
  EXPECT_GT(at_low, at_high);
  EXPECT_GT(at_low, 0.3);   // envelope is above 1x single-antenna often
  EXPECT_LT(at_high, 0.3);  // but rarely above 6x
}

TEST(Objective, EnvelopeMatchesDirectPolarAtLargeStepCounts) {
  // Regression for incremental-rotation drift: the envelope evaluator
  // multiplies unit phasors up to 2^20 times, which slowly walks them off
  // the unit circle unless they are re-anchored from std::polar. Compare
  // against direct evaluation at spot-checked sample indices.
  Rng rng(3);
  const auto offsets = FrequencyPlan::paper_default().offsets_hz();
  std::vector<double> phases(offsets.size());
  std::vector<double> amps(offsets.size());
  for (auto& p : phases) p = rng.phase();
  for (auto& a : amps) a = rng.uniform(0.5, 2.0);
  const std::size_t steps = std::size_t{1} << 20;
  const double t_max = 1.0;
  const auto env = cib_envelope(offsets, phases, amps, t_max, steps);
  const double dt = t_max / static_cast<double>(steps);
  for (std::size_t n = 0; n < steps; n += 65521) {  // prime stride: hits
    std::complex<double> sum{0.0, 0.0};             // mid-renorm samples too
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      sum += std::polar(amps[i],
                        phases[i] + kTwoPi * offsets[i] * dt *
                                        static_cast<double>(n));
    }
    EXPECT_NEAR(env[n], std::abs(sum), 1e-9) << "sample " << n;
  }
  // The very last sample has seen the most accumulated rotation.
  std::complex<double> last{0.0, 0.0};
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    last += std::polar(amps[i],
                       phases[i] + kTwoPi * offsets[i] * dt *
                                       static_cast<double>(steps - 1));
  }
  EXPECT_NEAR(env[steps - 1], std::abs(last), 1e-9);
}

TEST(Objective, EnvelopePeriodicity) {
  // Integer offsets -> envelope repeats every 1 s (cyclic operation,
  // Sec. 3.6(a)).
  Rng rng(5);
  const std::vector<double> offsets = {0, 7, 20};
  std::vector<double> phases = {rng.phase(), rng.phase(), rng.phase()};
  const auto env = cib_envelope(offsets, phases, {}, 2.0, 2000);
  for (std::size_t i = 0; i < 1000; i += 50) {
    EXPECT_NEAR(env[i], env[i + 1000], 1e-6);
  }
}

TEST(Optimizer, ProducesFeasiblePlan) {
  OptimizerConfig cfg;
  cfg.num_antennas = 5;
  cfg.mc_trials = 24;
  cfg.iterations = 60;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng rng(6);
  const auto result = opt.optimize(rng);
  ASSERT_EQ(result.offsets_hz.size(), 5u);
  EXPECT_DOUBLE_EQ(result.offsets_hz.front(), 0.0);
  const FrequencyPlan plan(915e6, result.offsets_hz);
  EXPECT_TRUE(plan.satisfies(cfg.constraint));
  EXPECT_GT(result.score, 0.0);
  EXPECT_GT(result.evaluations, 10u);
}

TEST(Optimizer, BeatsABadSet) {
  // Fig. 6's message: frequency selection matters. The optimizer must beat
  // a pathological clustered set.
  OptimizerConfig cfg;
  cfg.num_antennas = 5;
  cfg.mc_trials = 32;
  cfg.iterations = 80;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng rng(7);
  const auto result = opt.optimize(rng);
  const std::vector<double> bad = {0, 1, 2, 3, 4};  // tight cluster
  EXPECT_GT(result.score, opt.score(bad));
}

TEST(Optimizer, PaperSetScoresNearOptimizer) {
  OptimizerConfig cfg;
  cfg.num_antennas = 10;
  cfg.mc_trials = 32;
  cfg.iterations = 80;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng rng(8);
  const auto result = opt.optimize(rng);
  const double paper =
      opt.score(FrequencyPlan::paper_default().offsets_hz());
  // The published set should be within 10% of what our optimizer finds.
  EXPECT_GT(paper, 0.9 * result.score);
}

TEST(Baselines, GenieIsSumOfMagnitudes) {
  Rng rng(9);
  const std::vector<double> amps = {1.0, 2.0, 3.0};
  const auto ch = make_blind_channel(amps, rng);
  EXPECT_NEAR(genie_mimo_amplitude(ch), 6.0, 1e-9);
}

TEST(Baselines, OrderingCibBetweenBlindAndGenie) {
  Rng rng(10);
  const std::vector<double> amps(8, 1.0);
  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  int cib_above_blind = 0;
  const int trials = 40;
  for (int k = 0; k < trials; ++k) {
    const auto ch = make_blind_channel(amps, rng);
    const double cib = cib_peak_amplitude(ch, offsets, 1.0);
    const double blind = coherent_blind_amplitude(ch);
    const double genie = genie_mimo_amplitude(ch);
    EXPECT_LE(cib, genie + 1e-9);
    EXPECT_GE(cib, blind - 1e-9);  // the peak over time includes t where
                                   // phases match the static draw or better
    cib_above_blind += (cib > blind);
  }
  EXPECT_EQ(cib_above_blind, trials);
}

TEST(Baselines, BeamsteeringPerfectWithTruePhases) {
  Rng rng(11);
  const std::vector<double> amps = {1.0, 1.0, 1.0, 1.0};
  const auto ch = make_blind_channel(amps, rng);
  std::vector<double> true_phases(4);
  for (std::size_t i = 0; i < 4; ++i) true_phases[i] = std::arg(ch.gain(i, 0.0));
  EXPECT_NEAR(beamsteering_amplitude(ch, true_phases), 4.0, 1e-9);
}

TEST(Baselines, BeamsteeringCollapsesWithWrongPhases) {
  // Through tissue the geometric phase assumption is wrong; the average
  // steered gain collapses to the blind level (footnote 5 in the paper).
  Rng rng(12);
  const std::vector<double> amps(10, 1.0);
  double steered_sum = 0.0;
  const int trials = 300;
  std::vector<double> assumed(10, 0.0);  // geometry says equal phases
  for (int k = 0; k < trials; ++k) {
    const auto ch = make_blind_channel(amps, rng);
    const double a = beamsteering_amplitude(ch, assumed);
    steered_sum += a * a;
  }
  // E[|sum of N random phasors|^2] = N.
  EXPECT_NEAR(steered_sum / trials, 10.0, 2.0);
}

TEST(Transmitter, BuildsSynchronizedCommandWaveforms) {
  Rng rng(13);
  RadioArrayConfig cfg;
  CibTransmitter tx(FrequencyPlan::paper_default().truncated(4), cfg, rng);
  const auto waves =
      tx.transmit_command(gen2::QueryCommand{}.encode(), gen2::PieTiming{},
                          /*with_preamble=*/true);
  ASSERT_EQ(waves.size(), 4u);
  // All antennas share the envelope: zero samples (PIE lows) coincide.
  for (std::size_t i = 0; i < waves[0].size(); i += 53) {
    const bool zero0 = std::abs(waves[0].samples[i]) < 1e-9;
    for (std::size_t a = 1; a < 4; ++a) {
      EXPECT_EQ(zero0, std::abs(waves[a].samples[i]) < 1e-9);
    }
  }
}

TEST(Transmitter, CwBurstDuration) {
  Rng rng(14);
  RadioArrayConfig cfg;
  CibTransmitter tx(FrequencyPlan::paper_default().truncated(2), cfg, rng);
  const auto waves = tx.transmit_cw(0.01);
  EXPECT_NEAR(waves[0].duration_s(), 0.01, 1e-4);
}

TEST(TwoStage, SteadyPlanImprovesConductionFraction) {
  OptimizerConfig cfg;
  cfg.num_antennas = 6;
  cfg.mc_trials = 24;
  cfg.iterations = 50;
  cfg.restarts = 2;
  TwoStageController controller(cfg);
  Rng rng(15);
  const auto discovery = controller.plan_discovery(rng);
  // Threshold at 2x a single antenna: well within reach of 6 antennas.
  const double threshold = 2.0;
  const auto steady = controller.plan_steady(threshold, rng);
  const double disc_frac =
      controller.conduction_fraction(discovery.offsets_hz, threshold);
  const double steady_frac =
      controller.conduction_fraction(steady.offsets_hz, threshold);
  EXPECT_GE(steady_frac, disc_frac * 0.99);
  EXPECT_GT(steady.objective_value, 0.0);
}

// Property sweep: for every antenna count, the Monte-Carlo peak-power gain
// of the paper's plan is within (0, N^2].
class GainBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GainBound, WithinTheoreticalBounds) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const auto plan = FrequencyPlan::paper_default().truncated(n);
  const double g = expected_peak_power_gain(plan.offsets_hz(), 32, rng);
  EXPECT_GT(g, static_cast<double>(n) * 0.9);  // at least ~linear (coherent
                                               // peak beats incoherent sum)
  EXPECT_LE(g, static_cast<double>(n * n) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AntennaCounts, GainBound,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

}  // namespace
}  // namespace ivnet
