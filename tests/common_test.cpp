// Tests for ivnet/common: RNG determinism and distributions, statistics,
// units and dB conversions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/common/units.hpp"

namespace ivnet {
namespace {

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(from_db(to_db(123.0)), 123.0, 1e-9);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(6.0), 1.9953, 1e-3);
}

TEST(Units, DbmConversions) {
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-12);
}

TEST(Units, Wavelength915MHz) {
  EXPECT_NEAR(wavelength(915e6), 0.3276, 1e-3);
}

TEST(Units, WrapPhase) {
  EXPECT_NEAR(wrap_phase(3.0 * kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_phase(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_phase_symmetric(kTwoPi - 0.25), -0.25, 1e-12);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    saw_lo |= (v == 3);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, PhaseCoversCircle) {
  Rng rng(13);
  int quadrants[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    const double p = rng.phase();
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, kTwoPi);
    quadrants[static_cast<int>(p / (kPi / 2.0)) % 4]++;
  }
  for (int q : quadrants) EXPECT_GT(q, 800);
}

TEST(Rng, ForkDecorrelated) {
  Rng parent(5);
  Rng child = parent.fork();
  // Parent and child streams should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> v;
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, MeanStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 1e-3);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> v = {3, 1, 2};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
}

TEST(Stats, FractionAbove) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(fraction_above(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_above(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_above(v, 4.0), 0.0);
}

TEST(Stats, SampleSetSummary) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  EXPECT_EQ(set.size(), 100u);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 100.0);
  const auto s = set.summary();
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p10, 10.9, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
}

// Property sweep: percentiles are monotone in q for random data.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v(257);
  for (auto& x : v) x = rng.normal(0.0, 10.0);
  double prev = percentile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double p = percentile(v, q);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ivnet
