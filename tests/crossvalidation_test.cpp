// Cross-validation tests: independent implementations of the same physics
// must agree. These are the checks that catch a modelling bug that unit
// tests (which share the model) would miss.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/harvester/transient.hpp"
#include "ivnet/media/medium.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/signal/goertzel.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {
namespace {

// --- Quasi-static harvester vs carrier-rate transient doubler.
//
// The quasi-static model claims VDC tracks N*(A - Vth) (with the loading
// divider); the transient simulator integrates the actual diode currents at
// 915 MHz. For a single voltage-doubler stage the two must agree on the
// steady output within ~15% across drive levels.
class HarvesterAgreement : public ::testing::TestWithParam<double> {};

TEST_P(HarvesterAgreement, SteadyOutputsMatch) {
  const double amplitude = GetParam();
  const double vth = 0.3;

  // Carrier-rate truth.
  DoublerConfig doubler;
  doubler.diode = Diode::threshold(vth);
  doubler.load_ohm = 1e6;  // light load: open-circuit-like
  const auto transient = simulate_doubler(doubler, amplitude, 915e6, 500);

  // Quasi-static model of the equivalent doubler: the Fig. 1 circuit yields
  // 2*(A - Vth); our N-stage abstraction with N = 2 and the same light load.
  HarvesterConfig cfg;
  cfg.stages = 2;
  cfg.vth_v = vth;
  cfg.load_ohm = 1e6;
  cfg.source_ohm = 100.0;
  cfg.clamp_voltage_v = 1e9;
  const Harvester harvester(cfg);
  const std::vector<double> env(20000, amplitude);
  const auto quasi = harvester.run(env, 100e3);

  if (amplitude <= vth) {
    EXPECT_LT(transient.final_v_out, 0.05);
    EXPECT_LT(quasi.vdc.back(), 0.05);
  } else {
    EXPECT_NEAR(transient.final_v_out, quasi.vdc.back(),
                0.15 * quasi.vdc.back() + 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Drives, HarvesterAgreement,
                         ::testing::Values(0.2, 0.4, 0.6, 1.0, 1.5, 2.5));

// --- Analytic CIB envelope vs brute-force waveform synthesis.
class EnvelopeAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeAgreement, AnalyticMatchesWaveform) {
  Rng rng(GetParam());
  const std::vector<double> offsets = {0, 7, 20, 49, 68};
  std::vector<double> phases(offsets.size());
  for (auto& p : phases) p = rng.phase();

  // Waveform truth: sum of tones, magnitude.
  const double fs = 4096.0;
  const auto wave = make_multitone(offsets, phases, {},
                                   static_cast<std::size_t>(fs), fs);
  const auto env_wave = envelope(wave);

  // Analytic evaluator on the same grid.
  const auto env_analytic =
      cib_envelope(offsets, phases, {}, 1.0, static_cast<std::size_t>(fs));
  ASSERT_EQ(env_wave.size(), env_analytic.size());
  for (std::size_t i = 0; i < env_wave.size(); i += 111) {
    EXPECT_NEAR(env_wave[i], env_analytic[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Eq. 1 rectifier vs the harvester's steady rail with a heavy load.
TEST(CrossCheck, RectifierAndHarvesterShareEq1) {
  const Rectifier rect(4, Diode::threshold(0.3));
  HarvesterConfig cfg;  // stages 4, vth 0.3
  cfg.clamp_voltage_v = 1e9;
  const Harvester harvester(cfg);
  for (double a : {0.5, 1.0, 2.0}) {
    const std::vector<double> env(30000, a);
    const double rail = harvester.run(env, 100e3).vdc.back();
    const double divider =
        cfg.load_ohm / (cfg.load_ohm + cfg.stages * cfg.source_ohm);
    EXPECT_NEAR(rail, rect.open_circuit_vdc(a) * divider, 0.02 * rail + 1e-9);
  }
}

// --- Medium attenuation: exact formula vs the low-loss approximation
// --- alpha ~ (sigma/2) * sqrt(mu/eps) for small loss tangents.
TEST(CrossCheck, AlphaMatchesLowLossApproximation) {
  const Medium mild("mild", 50.0, 0.2);  // loss tangent ~0.08 at 915 MHz
  const double exact = mild.alpha(915e6);
  const double approx =
      0.5 * mild.sigma() * std::sqrt(kMu0 / (mild.eps_r() * kEpsilon0));
  EXPECT_NEAR(exact, approx, 0.01 * approx);
}

// --- Goertzel vs time-domain mean power (Parseval-style check).
TEST(CrossCheck, BandPowerAccountsForMultitoneEnergy) {
  const std::vector<double> offsets = {100.0, 250.0, 400.0};
  const std::vector<double> phases = {0.1, 1.2, 2.3};
  const auto wave = make_multitone(offsets, phases, {}, 8192, 8192.0);
  // Each unit tone contributes |X|^2 = 1 at its own bin.
  double sum = 0.0;
  for (double f : offsets) sum += goertzel_power(wave, f);
  EXPECT_NEAR(sum, 3.0, 0.01);
  EXPECT_NEAR(mean_power(wave), 3.0, 0.01);
}

// --- CIB peak amplitude: channel-based evaluator vs direct waveform max.
TEST(CrossCheck, ChannelPeakMatchesWaveformPeak) {
  Rng rng(11);
  const std::vector<double> amps = {0.7, 1.1, 0.9, 1.3};
  const auto ch = make_blind_channel(amps, rng);
  const std::vector<double> offsets = {0, 7, 20, 49};

  const double via_channel = cib_peak_amplitude(ch, offsets, 1.0);

  std::vector<double> phases(4), mags(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const cplx h = ch.gain(i, offsets[i]);
    phases[i] = std::arg(h);
    mags[i] = std::abs(h);
  }
  const auto wave = make_multitone(offsets, phases, mags, 16384, 16384.0);
  EXPECT_NEAR(via_channel, peak_amplitude(wave), 0.01 * via_channel);
}

}  // namespace
}  // namespace ivnet
