// The determinism suite: every parallelized Monte-Carlo loop must produce
// BITWISE-identical results for any pool size (IVNET_THREADS 1, 2, 8, ...).
// This is the contract that makes the thread count a pure performance knob:
// per-trial counter-derived Rng streams plus order-fixed reductions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/obs/trace.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/sim/planner.hpp"
#include "ivnet/svc/loadgen.hpp"
#include "ivnet/svc/service.hpp"

namespace ivnet {
namespace {

constexpr std::size_t kPoolSizes[] = {1, 2, 8};

/// The balanced-brace object following `"key":` in `doc` (including the
/// braces), or "" when absent. The snapshot emitter never puts braces inside
/// strings, so brace counting is exact here.
std::string extract_object(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t open = doc.find('{', at + needle.size());
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < doc.size(); ++i) {
    if (doc[i] == '{') ++depth;
    if (doc[i] == '}' && --depth == 0) {
      return doc.substr(open, i - open + 1);
    }
  }
  return "";
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(DeterminismTest, ExpectedPeakAmplitudeBitwiseAcrossPoolSizes) {
  const auto plan = FrequencyPlan::paper_default();
  auto run = [&] {
    Rng rng(77);
    return expected_peak_amplitude(plan.offsets_hz(), 96, rng);
  };
  set_parallel_threads(1);
  const double reference = run();
  EXPECT_GT(reference, 0.0);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, ConductionFractionBitwiseAcrossPoolSizes) {
  const auto plan = FrequencyPlan::paper_default();
  auto run = [&] {
    Rng rng(21);
    return expected_conduction_fraction(plan.offsets_hz(), 3.0, 48, rng);
  };
  set_parallel_threads(1);
  const double reference = run();
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, OptimizerBitwiseAcrossPoolSizes) {
  OptimizerConfig cfg;
  cfg.num_antennas = 6;
  cfg.mc_trials = 16;
  cfg.iterations = 30;
  cfg.restarts = 3;
  auto run = [&] {
    FrequencyOptimizer opt(cfg);
    Rng rng(123);
    return opt.optimize(rng);
  };
  set_parallel_threads(1);
  const auto reference = run();
  EXPECT_EQ(reference.offsets_hz.size(), 6u);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    const auto result = run();
    EXPECT_EQ(result.offsets_hz, reference.offsets_hz)
        << "pool size " << threads;
    EXPECT_EQ(result.score, reference.score) << "pool size " << threads;
    EXPECT_EQ(result.rms_hz, reference.rms_hz) << "pool size " << threads;
    EXPECT_EQ(result.evaluations, reference.evaluations)
        << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, AnnealedOptimizerBitwiseAcrossPoolSizes) {
  // The delta-evaluated annealing search inherits the optimizer's
  // determinism contract: one stream base per optimize call, one counter
  // stream per restart, trial-order reductions — so the winning plan is
  // byte-identical whether the restarts ran sequentially (pool of 1) or
  // fanned out (8).
  OptimizerConfig cfg;
  cfg.num_antennas = 12;
  cfg.mc_trials = 8;
  cfg.restarts = 3;
  AnnealConfig anneal;
  anneal.moves = 60;
  auto run = [&] {
    FrequencyOptimizer opt(cfg);
    Rng rng(123);
    return opt.optimize_annealed(anneal, rng);
  };
  set_parallel_threads(1);
  const auto reference = run();
  EXPECT_EQ(reference.offsets_hz.size(), 12u);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    const auto result = run();
    EXPECT_EQ(result.offsets_hz, reference.offsets_hz)
        << "pool size " << threads;
    EXPECT_EQ(result.score, reference.score) << "pool size " << threads;
    EXPECT_EQ(result.rms_hz, reference.rms_hz) << "pool size " << threads;
    EXPECT_EQ(result.evaluations, reference.evaluations)
        << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, PlannerCountersSnapshotByteEqualAcrossPoolSizes) {
  // Plan once (miss: the annealer runs and emits planner.evals and
  // planner.moves.*), re-plan the identical request (hit: zero extra
  // evals), and pin the counters section of the snapshot across thread
  // counts. planner.plan.seconds is wall-valued and lives in a histogram
  // section, so comparing counters only keeps the pin byte-exact.
  FrequencyPlanRequest request;
  request.antennas = 8;
  request.mc_trials = 4;
  request.moves = 24;
  request.restarts = 2;
  auto run = [&] {
    CellCache::instance().clear();  // a fresh store per run: miss then hit
    obs::MetricsRegistry registry;
    obs::install({.metrics = &registry, .tracer = nullptr});
    const auto first = plan_frequencies(request);
    const auto again = plan_frequencies(request);
    obs::install_null();
    EXPECT_FALSE(first.cached);
    EXPECT_TRUE(again.cached);
    EXPECT_EQ(again.evaluations, 0u);
    EXPECT_EQ(again.plan_json, first.plan_json);
    // Pin the planner.* counters only: the infrastructural parallel.for.*
    // counters count pool dispatches, which legitimately change when the
    // restart fan-out switches between parallel and sequential.
    const std::string counters =
        extract_object(registry.snapshot_json(), "counters");
    std::string pinned;
    std::size_t pos = 0;
    while ((pos = counters.find("\"planner.", pos)) != std::string::npos) {
      const std::size_t end = counters.find_first_of(",}", pos);
      pinned += counters.substr(pos, end - pos) + "\n";
      pos = end;
    }
    return pinned;
  };
  set_parallel_threads(1);
  const std::string reference = run();
  ASSERT_NE(reference.find("planner.evals"), std::string::npos);
  ASSERT_NE(reference.find("planner.moves.accepted"), std::string::npos);
  ASSERT_NE(reference.find("planner.moves.rejected"), std::string::npos);
  ASSERT_NE(reference.find("planner.cache.hits"), std::string::npos);
  ASSERT_NE(reference.find("planner.cache.misses"), std::string::npos);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, GainTrialsBitwiseAcrossPoolSizes) {
  const auto scen = water_tank_scenario(0.05, 0.05);
  const auto plan = FrequencyPlan::paper_default().truncated(6);
  auto run = [&] {
    Rng rng(9);
    return run_gain_trials(scen, standard_tag(), plan, 40, rng);
  };
  set_parallel_threads(1);
  const auto reference = run();
  ASSERT_EQ(reference.size(), 40u);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    const auto trials = run();
    ASSERT_EQ(trials.size(), reference.size()) << "pool size " << threads;
    for (std::size_t k = 0; k < trials.size(); ++k) {
      EXPECT_EQ(trials[k].cib_gain, reference[k].cib_gain)
          << "trial " << k << " pool size " << threads;
      EXPECT_EQ(trials[k].baseline_gain, reference[k].baseline_gain)
          << "trial " << k << " pool size " << threads;
      EXPECT_EQ(trials[k].genie_gain, reference[k].genie_gain)
          << "trial " << k << " pool size " << threads;
    }
  }
}

TEST_F(DeterminismTest, PlannerBitwiseAcrossPoolSizes) {
  const auto scen = water_tank_scenario(0.05, 0.05);
  auto run = [&] {
    Rng rng(5);
    return plan_deployment(scen, standard_tag(), DeploymentRequirements{}, rng);
  };
  set_parallel_threads(1);
  const auto reference = run();
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    const auto plan = run();
    EXPECT_EQ(plan.feasible, reference.feasible) << "pool size " << threads;
    EXPECT_EQ(plan.antennas, reference.antennas) << "pool size " << threads;
    EXPECT_EQ(plan.power_up_probability, reference.power_up_probability)
        << "pool size " << threads;
    EXPECT_EQ(plan.energy_per_period_j, reference.energy_per_period_j)
        << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, ImpairedSessionBitwiseAcrossPoolSizes) {
  // One impaired link session is single-threaded, but its rng contract
  // (exactly one draw, counter-derived attempt streams) must make it
  // insensitive to the global pool size anyway.
  ImpairedLinkConfig config;
  config.snr_db = 10.0;
  config.impair.bursts = {.rate_hz = 200.0, .mean_duration_s = 5e-4,
                          .depth_db = 40.0};
  config.recovery = RecoveryPolicy::retries(2);
  auto run = [&] {
    Rng rng(444);
    return run_impaired_link_session(config, rng);
  };
  set_parallel_threads(1);
  const auto reference = run();
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    const auto report = run();
    EXPECT_EQ(report.success, reference.success) << "pool size " << threads;
    EXPECT_EQ(report.rn16, reference.rn16) << "pool size " << threads;
    EXPECT_EQ(report.epc, reference.epc) << "pool size " << threads;
    EXPECT_EQ(report.commands_sent, reference.commands_sent)
        << "pool size " << threads;
    EXPECT_EQ(report.recovery.retries, reference.recovery.retries)
        << "pool size " << threads;
    EXPECT_EQ(report.recovery.timeouts, reference.recovery.timeouts)
        << "pool size " << threads;
    EXPECT_EQ(report.last_correlation, reference.last_correlation)
        << "pool size " << threads;
    EXPECT_EQ(report.elapsed_s, reference.elapsed_s)
        << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, WaterfallJsonByteEqualAcrossPoolSizes) {
  WaterfallConfig config;
  config.snr_points_db = {30.0, 12.0, 4.0};
  config.trials_per_point = 24;
  config.link.recovery = RecoveryPolicy::retries(1);
  auto run = [&] {
    Rng rng(888);
    return waterfall_json(run_ber_waterfall(config, rng));
  };
  set_parallel_threads(1);
  const std::string reference = run();
  EXPECT_FALSE(reference.empty());
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, SessionMatrixJsonByteEqualAcrossPoolSizes) {
  MatrixConfig config;
  config.media = {{"water", 2.0}, {"muscle", 6.0}};
  config.snr_points_db = {30.0, 8.0};
  config.antenna_counts = {1, 3};
  config.trials_per_cell = 12;
  config.link.recovery = RecoveryPolicy::retries(1);
  config.link.impair.bursts = {.rate_hz = 100.0, .mean_duration_s = 5e-4,
                               .depth_db = 40.0};
  auto run = [&] {
    Rng rng(1234);
    return matrix_json(run_session_matrix(config, rng));
  };
  set_parallel_threads(1);
  const std::string reference = run();
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, BatchedWaterfallJsonByteEqualAcrossPoolSizes) {
  // The batched pipeline inherits the full determinism contract: the JSON
  // must be byte-identical for any pool size AND equal to the scalar path.
  WaterfallConfig config;
  config.snr_points_db = {30.0, 12.0, 4.0};
  config.trials_per_point = 24;
  config.link.recovery = RecoveryPolicy::retries(1);
  auto run = [&](std::size_t batch) {
    WaterfallConfig c = config;
    c.batch.batch_size = batch;
    Rng rng(888);
    return waterfall_json(run_ber_waterfall(c, rng));
  };
  set_parallel_threads(1);
  const std::string scalar = run(1);
  for (const std::size_t batch : {std::size_t{8}, std::size_t{32}}) {
    for (std::size_t threads : kPoolSizes) {
      set_parallel_threads(threads);
      EXPECT_EQ(run(batch), scalar)
          << "batch " << batch << " pool size " << threads;
    }
  }
}

TEST_F(DeterminismTest, BatchedMatrixJsonByteEqualAcrossPoolSizes) {
  MatrixConfig config;
  config.media = {{"water", 2.0}, {"muscle", 6.0}};
  config.snr_points_db = {30.0, 8.0};
  config.antenna_counts = {1, 3};
  config.trials_per_cell = 12;
  config.link.recovery = RecoveryPolicy::retries(1);
  auto run = [&](std::size_t batch) {
    MatrixConfig c = config;
    c.batch.batch_size = batch;
    Rng rng(1234);
    return matrix_json(run_session_matrix(c, rng));
  };
  set_parallel_threads(1);
  const std::string scalar = run(1);
  for (const std::size_t batch : {std::size_t{8}, std::size_t{32}}) {
    for (std::size_t threads : kPoolSizes) {
      set_parallel_threads(threads);
      EXPECT_EQ(run(batch), scalar)
          << "batch " << batch << " pool size " << threads;
    }
  }
}

// Observability must obey the same contract as the results themselves: a
// metrics snapshot and a sim-time trace taken over a fixed workload must be
// byte-identical for any pool size.  Everything the hooks record for these
// workloads is structural (call/trial counts) or simulated (elapsed seconds,
// retries, Q values), never wall-clock or scheduling-order dependent.
TEST_F(DeterminismTest, MetricsSnapshotByteEqualAcrossPoolSizes) {
  WaterfallConfig config;
  config.snr_points_db = {24.0, 10.0};
  config.trials_per_point = 16;
  config.link.recovery = RecoveryPolicy::retries(1);
  config.link.impair.bursts = {.rate_hz = 150.0, .mean_duration_s = 5e-4,
                               .depth_db = 40.0};
  auto run = [&] {
    obs::MetricsRegistry registry;
    obs::install({.metrics = &registry, .tracer = nullptr});
    Rng rng(4242);
    (void)run_ber_waterfall(config, rng);
    obs::install_null();
    return registry.snapshot_json();
  };
  set_parallel_threads(1);
  const std::string reference = run();
  EXPECT_NE(reference.find("\"link.sessions\":32"), std::string::npos)
      << reference;
  EXPECT_NE(reference.find("link.elapsed_s"), std::string::npos);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, SimTraceByteEqualAcrossPoolSizes) {
  MatrixConfig config;
  config.media = {{"water", 2.0}, {"muscle", 6.0}};
  config.snr_points_db = {26.0, 9.0};
  config.antenna_counts = {1, 4};
  config.trials_per_cell = 8;
  config.link.recovery = RecoveryPolicy::retries(1);
  config.link.impair.bursts = {.rate_hz = 120.0, .mean_duration_s = 5e-4,
                               .depth_db = 40.0};
  auto run = [&] {
    obs::Tracer tracer(obs::TraceClock::kSim);
    obs::install({.metrics = nullptr, .tracer = &tracer});
    Rng rng(97);
    (void)run_session_matrix(config, rng);
    obs::install_null();
    return tracer.to_json();
  };
  set_parallel_threads(1);
  const std::string reference = run();
  EXPECT_NE(reference.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(reference.find("\"name\":\"charge\""), std::string::npos);
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, SnapshotAndTraceTogetherByteEqualAcrossPoolSizes) {
  // Both sinks live at once, over the depth sweep: the combined artifact pair
  // is what ci.sh archives, so pin it as a unit.
  DepthSweepConfig config;
  config.depths_m = {0.03, 0.08};
  config.trials_per_point = 12;
  config.link.recovery = RecoveryPolicy::retries(2);
  auto run = [&] {
    obs::MetricsRegistry registry;
    obs::Tracer tracer(obs::TraceClock::kSim);
    obs::install({.metrics = &registry, .tracer = &tracer});
    Rng rng(31);
    (void)run_success_vs_depth(config, rng);
    obs::install_null();
    return registry.snapshot_json() + "\n" + tracer.to_json();
  };
  set_parallel_threads(1);
  const std::string reference = run();
  for (std::size_t threads : kPoolSizes) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), reference) << "pool size " << threads;
  }
}

TEST_F(DeterminismTest, ServiceMetricsSnapshotByteEqualAcrossWorkerCounts) {
  // Service mode inherits the metrics determinism contract: every counter
  // and every SIM-time-valued histogram in the snapshot must be
  // byte-identical across worker counts and across reruns. Wall-time
  // histograms (svc.queue_wait, svc.service_time) and scheduling-dependent
  // gauges (svc.inflight peaks, arena high-water) are explicitly outside
  // the contract, so the pin compares the extracted sections, not the whole
  // document.
  svc::LoadGenConfig load;
  svc::LoadState decode;
  decode.rate_rps = 1000.0;
  decode.kind = svc::RequestKind::kDecode;
  decode.trials = 3;
  decode.antennas = 2;
  decode.snr_db = 14.0;
  svc::LoadState plan = decode;
  plan.kind = svc::RequestKind::kPlan;
  plan.antennas = 4;
  load.states = {decode, plan};
  load.transition = {0.8, 0.2, 0.5, 0.5};
  load.requests = 48;
  load.seed = 23;
  const auto schedule = svc::generate_schedule(load);

  auto run = [&](std::size_t workers) {
    // kPlan requests memoize through the process-wide plan store; clear it
    // so every run recomputes and the planner counters match run one.
    CellCache::instance().clear();
    obs::MetricsRegistry registry;
    obs::install({.metrics = &registry, .tracer = nullptr});
    {
      svc::ServiceConfig config;
      config.workers = workers;
      config.queue_depth = 128;  // > requests: the reject path stays cold
      svc::InventoryService service(config, nullptr);
      for (const svc::ScheduledRequest& s : schedule) {
        EXPECT_TRUE(service.submit(s.request));
      }
      service.stop();
    }
    obs::install_null();
    const std::string snapshot = registry.snapshot_json();
    return extract_object(snapshot, "counters") + "\n" +
           extract_object(snapshot, "svc.sim_elapsed_s") + "\n" +
           extract_object(snapshot, "link.elapsed_s");
  };

  set_parallel_threads(1);
  const std::string reference = run(1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference.front(), '{') << "counters section must extract";
  ASSERT_NE(reference.find("svc.completed"), std::string::npos);
  ASSERT_NE(reference.find("svc.requests.plan"), std::string::npos);
  for (std::size_t workers : kPoolSizes) {
    EXPECT_EQ(run(workers), reference) << "workers " << workers;
  }
  EXPECT_EQ(run(8), run(8)) << "rerun at fixed width must be byte-identical";
}

TEST_F(DeterminismTest, RngConsumedExactlyOncePerParallelCall) {
  // The parallel loops draw exactly one stream base from the caller's rng,
  // regardless of the trial count: downstream consumers of the same rng see
  // the same sequence whether the loop ran 10 or 10000 trials.
  const auto offsets = FrequencyPlan::paper_default().offsets_hz();
  Rng a(7), b(7);
  (void)expected_peak_amplitude(offsets, 8, a);
  (void)expected_peak_amplitude(offsets, 64, b);
  EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace ivnet
