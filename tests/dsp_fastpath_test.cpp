// Pins the DSP fast path (three-region FIR, polyphase decimate, per-phase
// rational resampler, CorrelationNeedle, PhasorRotator, DspWorkspace)
// against the retained naive oracles in signal/naive_dsp.hpp.
//
// The bitwise-equivalence policy (docs/ARCHITECTURE.md, "DSP fast path"):
// a kernel rewrite may reorganize WHICH outputs are computed and how loops
// are tiled, but each output must be produced by the identical sequence of
// floating-point operations — so these tests compare with memcmp-strict
// equality, not tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/signal/correlate.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/naive_dsp.hpp"
#include "ivnet/signal/phasor.hpp"
#include "ivnet/signal/resampler.hpp"

namespace ivnet {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

Waveform random_wave(std::size_t n, std::uint64_t seed, double fs = 800e3) {
  Rng rng(seed);
  Waveform w;
  w.sample_rate_hz = fs;
  w.samples.resize(n);
  for (auto& s : w.samples) {
    s = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  return w;
}

void expect_bitwise_eq(std::span<const double> got,
                       std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << ": sample " << i << " got " << got[i] << " want "
        << want[i];
  }
}

void expect_bitwise_eq(const Waveform& got, const Waveform& want,
                       const char* what) {
  ASSERT_EQ(got.samples.size(), want.samples.size()) << what;
  EXPECT_DOUBLE_EQ(got.sample_rate_hz, want.sample_rate_hz) << what;
  for (std::size_t i = 0; i < got.samples.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got.samples[i], &want.samples[i], sizeof(cplx)), 0)
        << what << ": sample " << i << " got " << got.samples[i] << " want "
        << want.samples[i];
  }
}

// --- Three-region FIR vs the bounds-checked oracle. -----------------------

TEST(FirFastPath, RealBitwiseMatchesNaiveAcrossLengths) {
  const auto taps = design_lowpass(40e3, 800e3, 31);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                        std::size_t{64}, std::size_t{1001}}) {
    const auto x = random_signal(n, 7 + n);
    expect_bitwise_eq(fir_filter(x, taps), naive::fir_filter(x, taps),
                      "real fir");
  }
}

TEST(FirFastPath, RealBitwiseMatchesNaiveEvenTapCount) {
  // fir_filter accepts arbitrary (including even-length, asymmetric) tap
  // spans even though design_lowpass only emits odd counts.
  const std::vector<double> taps = {0.31, -0.2, 0.52, 0.11, -0.07, 0.4};
  for (std::size_t n : {std::size_t{3}, std::size_t{6}, std::size_t{257}}) {
    const auto x = random_signal(n, 100 + n);
    expect_bitwise_eq(fir_filter(x, taps), naive::fir_filter(x, taps),
                      "even-tap fir");
  }
}

TEST(FirFastPath, ComplexBitwiseMatchesNaive) {
  const auto taps = design_lowpass(40e3, 800e3, 101);
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{257},
                        std::size_t{4096}}) {
    const auto w = random_wave(n, 11 + n);
    expect_bitwise_eq(fir_filter(w, taps), naive::fir_filter(w, taps),
                      "complex fir");
  }
}

TEST(FirFastPath, InputShorterThanFilterBitwiseMatchesNaive) {
  const auto taps = design_lowpass(40e3, 800e3, 101);
  const auto x = random_signal(17, 3);
  expect_bitwise_eq(fir_filter(x, taps), naive::fir_filter(x, taps),
                    "short-input fir");
}

TEST(FirFastPath, ImpulseResponseEqualsTaps) {
  // "Same" alignment: a centered impulse reproduces the taps in order,
  // shifted by the group delay.
  const std::vector<double> taps = {0.1, -0.5, 1.0, 0.25, -0.125};
  std::vector<double> x(64, 0.0);
  const std::size_t pos = 32;
  x[pos] = 1.0;
  const auto y = fir_filter(x, taps);
  const std::size_t delay = (taps.size() - 1) / 2;
  for (std::size_t t = 0; t < taps.size(); ++t) {
    EXPECT_DOUBLE_EQ(y[pos - delay + t], taps[t]) << "tap " << t;
  }
}

TEST(FirFastPath, Linearity) {
  const auto taps = design_lowpass(60e3, 800e3, 41);
  const auto x = random_signal(300, 21);
  const auto y = random_signal(300, 22);
  std::vector<double> mix(300);
  for (std::size_t i = 0; i < mix.size(); ++i) mix[i] = 2.0 * x[i] - 0.5 * y[i];
  const auto fx = fir_filter(x, taps);
  const auto fy = fir_filter(y, taps);
  const auto fmix = fir_filter(mix, taps);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_NEAR(fmix[i], 2.0 * fx[i] - 0.5 * fy[i], 1e-12);
  }
}

// --- Polyphase decimation vs filter-everything-then-discard. --------------

TEST(DecimateFastPath, ComplexBitwiseMatchesNaive) {
  for (std::size_t factor : {1u, 2u, 3u, 8u, 16u}) {
    const auto w = random_wave(3000, 40 + factor);
    expect_bitwise_eq(decimate(w, factor), naive::decimate(w, factor),
                      "complex decimate");
  }
}

TEST(DecimateFastPath, RealBitwiseMatchesNaive) {
  const double fs = 800e3;
  for (std::size_t factor : {1u, 2u, 3u, 8u, 16u}) {
    const auto x = random_signal(3000, 60 + factor);
    expect_bitwise_eq(decimate(x, factor, fs), naive::decimate(x, factor, fs),
                      "real decimate");
  }
}

TEST(DecimateFastPath, InputShorterThanFilterBitwiseMatchesNaive) {
  // factor 16 designs 34*16+1 = 545 taps; a 100-sample input is all edges.
  const auto w = random_wave(100, 77);
  expect_bitwise_eq(decimate(w, 16), naive::decimate(w, 16),
                    "short-input decimate");
}

// --- Polyphase rational resampler vs the zero-stuffed scan. ---------------

TEST(ResamplerFastPath, BitwiseMatchesNaive) {
  struct Ratio {
    std::size_t up, down;
  };
  for (const auto [up, down] : {Ratio{3, 2}, Ratio{7, 5}, Ratio{2, 5},
                                Ratio{5, 3}, Ratio{1, 1}, Ratio{16, 1},
                                Ratio{1, 8}}) {
    const RationalResampler rs(up, down);
    for (std::size_t n : {std::size_t{0}, std::size_t{9}, std::size_t{1000}}) {
      const auto x = random_signal(n, up * 31 + down * 7 + n);
      expect_bitwise_eq(rs.apply(x), naive::resample(rs, x),
                        "rational resample");
    }
  }
}

TEST(ResamplerFastPath, ComplexLanesMatchRealPath) {
  const RationalResampler rs(7, 5);
  const auto w = random_wave(500, 99, 10e3);
  std::vector<double> re(w.samples.size()), im(w.samples.size());
  for (std::size_t i = 0; i < w.samples.size(); ++i) {
    re[i] = w.samples[i].real();
    im[i] = w.samples[i].imag();
  }
  const auto out = rs.apply(w);
  const auto re_out = rs.apply(re);
  const auto im_out = rs.apply(im);
  ASSERT_EQ(out.samples.size(), re_out.size());
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 14e3);
  for (std::size_t i = 0; i < re_out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.samples[i].real(), re_out[i]);
    EXPECT_DOUBLE_EQ(out.samples[i].imag(), im_out[i]);
  }
}

TEST(ResamplerLengthContract, FloorsOutputLength) {
  // out_len = floor(n * up / down), documented in resampler.hpp. The
  // off-by-one-prone ratios: 3/2 and 7/5 produce fractional virtual
  // lengths for odd/most n.
  struct Case {
    std::size_t up, down, n, want;
  };
  for (const auto [up, down, n, want] :
       {Case{3, 2, 5, 7}, Case{3, 2, 4, 6}, Case{3, 2, 1, 1},
        Case{7, 5, 9, 12}, Case{7, 5, 5, 7}, Case{7, 5, 4, 5},
        Case{2, 5, 4, 1}, Case{2, 5, 2, 0}, Case{2, 5, 0, 0}}) {
    const RationalResampler rs(up, down);
    const auto x = random_signal(n, 123 + n);
    EXPECT_EQ(rs.apply(x).size(), want)
        << up << "/" << down << " of " << n << " samples";
    EXPECT_EQ(rs.apply(x).size(), n * up / down);
  }
}

// --- CorrelationNeedle vs per-offset normalized_correlation. --------------

TEST(CorrelateFastPath, SlidingMatchesPerOffsetOracle) {
  const auto haystack = random_signal(400, 5);
  const auto needle = random_signal(37, 6);
  const auto fast = sliding_correlation(haystack, needle);
  ASSERT_EQ(fast.size(), haystack.size() - needle.size() + 1);
  for (std::size_t off = 0; off < fast.size(); ++off) {
    const double want = normalized_correlation(
        std::span(haystack).subspan(off, needle.size()), needle);
    ASSERT_EQ(std::memcmp(&fast[off], &want, sizeof(double)), 0)
        << "offset " << off;
  }
}

TEST(CorrelateFastPath, NeedleHandlesDegenerateWindows) {
  const std::vector<double> constant(8, 3.0);
  const auto needle = random_signal(8, 9);
  const CorrelationNeedle cached(needle);
  EXPECT_EQ(cached.correlate(constant), 0.0);  // zero-variance window
  EXPECT_EQ(cached.correlate(std::span<const double>{}), 0.0);
  const CorrelationNeedle flat(constant);
  EXPECT_EQ(flat.correlate(needle), 0.0);  // zero-variance needle
}

TEST(CorrelateFastPath, BestCorrelationFindsEmbeddedNeedle) {
  const auto needle = random_signal(25, 13);
  std::vector<double> haystack = random_signal(300, 14);
  for (std::size_t i = 0; i < needle.size(); ++i) {
    haystack[120 + i] = needle[i];
  }
  const auto peak = best_correlation(haystack, needle);
  EXPECT_EQ(peak.offset, 120u);
  EXPECT_NEAR(peak.value, 1.0, 1e-12);
}

// --- PhasorRotator drift regression (satellite). --------------------------

TEST(Phasor, RenormBoundsDriftAtTwoToTwentySteps) {
  // One full SawFilter-scale rotation: 2^20 advances of a 0.37 rad step.
  // The re-anchored phasor must sit within 1e-9 of the exact value; the
  // bare product accumulates ~steps * eps and is orders of magnitude off
  // the unit circle by then.
  const double dphi = 0.37;
  constexpr std::size_t kSteps = 1u << 20;
  PhasorRotator rot(0.0, dphi);
  cplx bare{1.0, 0.0};
  const cplx step = std::polar(1.0, dphi);
  for (std::size_t i = 0; i < kSteps; ++i) {
    rot.advance();
    bare *= step;
  }
  const cplx exact = std::polar(1.0, dphi * static_cast<double>(kSteps));
  EXPECT_LT(std::abs(rot.value() - exact), 1e-9);
  EXPECT_NEAR(std::abs(rot.value()), 1.0, 1e-11);
  // The regression half: renorm must beat the bare product, which this
  // far out has drifted past the anchored error bound.
  EXPECT_LT(std::abs(rot.value() - exact), std::abs(bare - exact));
}

TEST(Phasor, MatchesPolarWithinRenormWindow) {
  const double phase0 = 0.9;
  const double dphi = -0.011;
  PhasorRotator rot(phase0, dphi);
  for (std::size_t k = 0; k < 3 * PhasorRotator::kRenormInterval; ++k) {
    const cplx exact = std::polar(1.0, phase0 + dphi * static_cast<double>(k));
    ASSERT_LT(std::abs(rot.value() - exact), 1e-11) << "step " << k;
    rot.advance();
  }
}

// --- DspWorkspace recycling. ----------------------------------------------

TEST(DspWorkspace, RecyclesReleasedCapacity) {
  DspWorkspace ws;
  auto big = ws.acquire_real(100000);
  const double* storage = big.data();
  ws.release(std::move(big));
  EXPECT_EQ(ws.pooled_real(), 1u);
  // A smaller checkout reuses the parked capacity, not a fresh allocation.
  auto reused = ws.acquire_real(500);
  EXPECT_EQ(reused.data(), storage);
  EXPECT_EQ(ws.pooled_real(), 0u);
  ws.release(std::move(reused));
}

TEST(DspWorkspace, ScopedBufferReturnsOnScopeExit) {
  DspWorkspace ws;
  {
    ScopedBuffer<double> a(ws, 64);
    ScopedBuffer<cplx> b(ws, 32);
    EXPECT_EQ(a.size(), 64u);
    EXPECT_EQ(b.size(), 32u);
    EXPECT_EQ(ws.pooled_real(), 0u);
    EXPECT_EQ(ws.pooled_cplx(), 0u);
  }
  EXPECT_EQ(ws.pooled_real(), 1u);
  EXPECT_EQ(ws.pooled_cplx(), 1u);
}

TEST(DspWorkspace, SteadyStateFilteringDoesNotGrowPools) {
  // Repeated SawFilter::apply calls through one workspace settle onto a
  // fixed set of buffers.
  DspWorkspace ws;
  const SawFilter saw(0.0, 40e3, 50.0, 800e3);
  const auto in = random_wave(4096, 31);
  Waveform out;
  saw.apply(in, out, ws);
  const std::size_t real_after_one = ws.pooled_real();
  const std::size_t cplx_after_one = ws.pooled_cplx();
  for (int i = 0; i < 5; ++i) saw.apply(in, out, ws);
  EXPECT_EQ(ws.pooled_real(), real_after_one);
  EXPECT_EQ(ws.pooled_cplx(), cplx_after_one);
}

}  // namespace
}  // namespace ivnet
