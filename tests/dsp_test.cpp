// Tests for the DSP additions: resampling (signal/resampler), quadrature
// impairments and their correctors (signal/iq), and the SDR receive chain
// (sdr/rx_chain).
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/sdr/rx_chain.hpp"
#include "ivnet/signal/goertzel.hpp"
#include "ivnet/signal/iq.hpp"
#include "ivnet/signal/resampler.hpp"

namespace ivnet {
namespace {

TEST(Decimate, PreservesInBandTone) {
  const auto tone = make_tone(1000.0, 0.0, 8192, 80e3);
  const auto out = decimate(tone, 4);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 20e3);
  EXPECT_EQ(out.size(), tone.size() / 4);
  EXPECT_NEAR(std::abs(goertzel(out, 1000.0)), 1.0, 0.05);
}

TEST(Decimate, SuppressesAliasingTone) {
  // 35 kHz at 80 kS/s would alias to -5 kHz after /4; the anti-alias filter
  // must remove it first.
  const auto tone = make_tone(35e3, 0.0, 8192, 80e3);
  const auto out = decimate(tone, 4);
  EXPECT_LT(std::abs(goertzel(out, -5e3)), 0.05);
}

TEST(Decimate, FactorOneIsIdentity) {
  const auto tone = make_tone(100.0, 0.3, 64, 1e3);
  const auto out = decimate(tone, 1);
  EXPECT_EQ(out.samples, tone.samples);
}

TEST(Decimate, RealSignalVariant) {
  std::vector<double> ramp(4096);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = 1.0;
  const auto out = decimate(ramp, 8, 80e3);
  EXPECT_EQ(out.size(), ramp.size() / 8);
  EXPECT_NEAR(out[out.size() / 2], 1.0, 0.01);  // DC preserved
}

TEST(Decimate, AliasRejectionAtLeast40dB) {
  // The two decimate overloads now share one audited anti-alias design
  // (cutoff 0.45 * out_rate, 34 * factor + 1 taps). A tone 10% above the
  // post-decimation Nyquist must come out >= 40 dB down at its alias bin.
  const double fs = 80e3;
  for (std::size_t factor : {2u, 4u, 8u}) {
    const double out_rate = fs / static_cast<double>(factor);
    const double tone_hz = 1.1 * (out_rate / 2.0);
    const auto tone = make_tone(tone_hz, 0.0, 1 << 14, fs);
    const auto out = decimate(tone, factor);
    // A complex tone above the new Nyquist wraps to tone_hz - out_rate.
    const double alias = std::abs(goertzel(out, tone_hz - out_rate));
    EXPECT_LT(amplitude_to_db(alias), -40.0)
        << "factor " << factor << ": alias only "
        << amplitude_to_db(alias) << " dB down";
  }
}

TEST(Decimate, RealOverloadSharesAliasRejection) {
  // Same contract through the real-span overload: an above-Nyquist cosine
  // must come out >= 40 dB below its input RMS.
  const double fs = 80e3;
  const std::size_t factor = 4;
  const double tone_hz = 1.1 * (fs / factor / 2.0);
  std::vector<double> x(1 << 14);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::cos(kTwoPi * tone_hz * static_cast<double>(i) / fs);
  }
  const auto out = decimate(x, factor, fs);
  double acc = 0.0;
  // Skip the filter edges: transient samples are not steady-state.
  const std::size_t margin = 64;
  for (std::size_t i = margin; i + margin < out.size(); ++i) acc += out[i] * out[i];
  const double rms =
      std::sqrt(acc / static_cast<double>(out.size() - 2 * margin));
  const double in_rms = 1.0 / std::sqrt(2.0);
  EXPECT_LT(amplitude_to_db(rms / in_rms), -40.0);
}

TEST(RationalResampler, UpsampleKeepsTone) {
  const RationalResampler rs(3, 2);
  const auto tone = make_tone(500.0, 0.0, 4096, 10e3);
  const auto out = rs.apply(tone);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz, 15e3);
  EXPECT_NEAR(static_cast<double>(out.size()),
              static_cast<double>(tone.size()) * 1.5, 2.0);
  EXPECT_NEAR(std::abs(goertzel(out, 500.0)), 1.0, 0.05);
}

TEST(RationalResampler, ReducesByGcd) {
  const RationalResampler rs(4, 2);
  EXPECT_EQ(rs.up(), 2u);
  EXPECT_EQ(rs.down(), 1u);
}

TEST(RationalResampler, DownsamplePreservesDc) {
  const RationalResampler rs(2, 5);
  const std::vector<double> dc(4000, 3.0);
  const auto out = rs.apply(dc);
  EXPECT_NEAR(static_cast<double>(out.size()), 4000.0 * 2.0 / 5.0, 2.0);
  EXPECT_NEAR(out[out.size() / 2], 3.0, 0.05);
}

TEST(FractionalDelay, IntegerDelayShifts) {
  const std::vector<double> x = {0, 0, 1, 0, 0, 0};
  const auto y = fractional_delay(x, 2.0);
  EXPECT_NEAR(y[4], 1.0, 1e-12);
  EXPECT_NEAR(y[2], 0.0, 1e-12);
}

TEST(FractionalDelay, HalfSampleInterpolates) {
  const std::vector<double> x = {0, 0, 1, 0, 0, 0};
  const auto y = fractional_delay(x, 0.5);
  EXPECT_NEAR(y[2], 0.5, 1e-12);
  EXPECT_NEAR(y[3], 0.5, 1e-12);
}

TEST(FractionalDelay, NegativeDelayShiftsEarlierAndZeroFillsTail) {
  const std::vector<double> x = {0, 0, 1, 0, 4, 5};
  const auto y = fractional_delay(x, -2.0);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_NEAR(y[0], 1.0, 1e-12);  // x[2] advanced two samples
  EXPECT_NEAR(y[2], 4.0, 1e-12);
  EXPECT_NEAR(y[3], 5.0, 1e-12);
  // Samples past the end of the input read the zero-filled boundary.
  EXPECT_EQ(y[4], 0.0);
  EXPECT_EQ(y[5], 0.0);
}

TEST(FractionalDelay, DelayBeyondLengthIsAllZeros) {
  const std::vector<double> x = {1, 2, 3, 4};
  for (const double d : {4.0, 9.5, -4.0, -100.25}) {
    const auto y = fractional_delay(x, d);
    ASSERT_EQ(y.size(), x.size()) << "delay " << d;
    for (const double v : y) EXPECT_EQ(v, 0.0) << "delay " << d;
  }
}

TEST(FractionalDelay, BoundaryStraddleInterpolatesAgainstZero) {
  // A fractional delay one half-sample past the edge blends the edge
  // sample with the implicit zero outside the signal.
  const std::vector<double> x = {8.0, 0, 0, 6.0};
  const auto y = fractional_delay(x, 0.5);
  EXPECT_NEAR(y[0], 4.0, 1e-12);  // 0.5 * x[-1=0] + 0.5 * x[0]
  const auto z = fractional_delay(x, -0.5);
  EXPECT_NEAR(z[3], 3.0, 1e-12);  // 0.5 * x[3] + 0.5 * x[4=0]
}

TEST(Iq, DcOffsetInjectedAndRemoved) {
  IqImpairments imp;
  imp.dc_i = 0.2;
  imp.dc_q = -0.1;
  auto wave = apply_impairments(make_tone(1000.0, 0.0, 4096, 100e3), imp);
  const cplx dc = remove_dc(wave);
  EXPECT_NEAR(dc.real(), 0.2, 0.01);
  EXPECT_NEAR(dc.imag(), -0.1, 0.01);
}

TEST(Iq, ImbalanceCreatesImageToneAndCorrectionRemovesIt) {
  IqImpairments imp;
  imp.gain_imbalance_db = 1.0;
  imp.phase_skew_rad = 0.05;
  auto wave = apply_impairments(make_tone(5e3, 0.4, 32768, 100e3), imp);
  const double irr_before = image_rejection_ratio_db(wave, 5e3);
  EXPECT_LT(irr_before, 35.0);  // visible image
  correct_iq_imbalance(wave);
  const double irr_after = image_rejection_ratio_db(wave, 5e3);
  EXPECT_GT(irr_after, irr_before + 15.0);
}

TEST(Iq, CleanSignalHasHugeIrr) {
  const auto wave = make_tone(5e3, 0.0, 16384, 100e3);
  EXPECT_GT(image_rejection_ratio_db(wave, 5e3), 60.0);
}

TEST(Iq, CfoEstimatedAndRemoved) {
  IqImpairments imp;
  imp.cfo_hz = 123.0;
  auto wave = apply_impairments(make_tone(0.0, 0.7, 16384, 100e3), imp);
  const double est = estimate_cfo(wave);
  EXPECT_NEAR(est, 123.0, 1.0);
  remove_cfo(wave, est);
  EXPECT_NEAR(std::abs(estimate_cfo(wave)), 0.0, 1.0);
}

TEST(RxChain, CleanChainPassesSignal) {
  RxChainConfig cfg;
  cfg.saturation_amplitude = 10.0;
  const RxChain chain(cfg);
  Rng rng(1);
  auto tone = make_tone(5e3, 0.0, 8192, 800e3);
  scale(tone, {0.1, 0.0});
  const auto capture = chain.process(tone, rng);
  EXPECT_FALSE(capture.clipped);
  EXPECT_NEAR(std::abs(goertzel(capture.samples, 5e3)), 0.1, 0.01);
}

TEST(RxChain, ClipsStrongSignal) {
  RxChainConfig cfg;
  cfg.saturation_amplitude = 0.5;
  const RxChain chain(cfg);
  Rng rng(2);
  auto tone = make_tone(5e3, 0.0, 2048, 800e3);
  scale(tone, {2.0, 0.0});
  const auto capture = chain.process(tone, rng);
  EXPECT_TRUE(capture.clipped);
  EXPECT_LE(peak_amplitude(capture.samples), 0.51);
}

TEST(RxChain, SawRejectsOutOfBandInterferer) {
  RxChainConfig cfg;
  cfg.saw_center_hz = 0.0;
  cfg.saw_bandwidth_hz = 80e3;
  cfg.saw_rejection_db = 50.0;
  cfg.saturation_amplitude = 10.0;
  cfg.correct_iq = false;  // keep the interferer measurement clean
  const RxChain chain(cfg);
  Rng rng(3);
  Waveform mix = make_tone(5e3, 0.0, 16384, 800e3);       // wanted
  accumulate(mix, make_tone(300e3, 1.0, 16384, 800e3));   // jammer
  const auto capture = chain.process(mix, rng);
  const double wanted = std::abs(goertzel(capture.samples, 5e3));
  const double jam = std::abs(goertzel(capture.samples, 300e3));
  EXPECT_GT(wanted, 0.8);
  EXPECT_LT(jam / wanted, 0.05);
}

TEST(RxChain, DecimationChangesRate) {
  RxChainConfig cfg;
  cfg.decimation = 4;
  cfg.saturation_amplitude = 10.0;
  const RxChain chain(cfg);
  Rng rng(4);
  const auto tone = make_tone(5e3, 0.0, 8192, 800e3);
  const auto capture = chain.process(tone, rng);
  EXPECT_DOUBLE_EQ(capture.samples.sample_rate_hz, 200e3);
  EXPECT_EQ(capture.samples.size(), 2048u);
}

TEST(RxChain, ImpairedChainStillDeliversToneAfterCorrection) {
  RxChainConfig cfg;
  cfg.impairments.dc_i = 0.05;
  cfg.impairments.gain_imbalance_db = 0.8;
  cfg.impairments.phase_skew_rad = 0.04;
  cfg.saturation_amplitude = 10.0;
  const RxChain chain(cfg);
  Rng rng(5);
  auto tone = make_tone(5e3, 0.2, 32768, 800e3);
  const auto capture = chain.process(tone, rng);
  EXPECT_GT(image_rejection_ratio_db(capture.samples, 5e3), 30.0);
  EXPECT_LT(std::abs(capture.removed_dc - cplx{0.05, 0.0}), 0.02);
}

}  // namespace
}  // namespace ivnet
