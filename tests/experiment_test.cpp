// Tests for the experiment-layer helpers (ivnet/sim/experiment) and the
// Query-M -> uplink-modulation wiring through the tag.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/miller.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

namespace ivnet {
namespace {

TEST(ExperimentHelpers, ArrayAmplitudesJitterAroundNominal) {
  Rng rng(1);
  const auto scen = air_scenario(2.0);
  const auto tag = standard_tag();
  const double v1 = single_antenna_voltage(scen, tag, calib::kCibCenterHz);
  std::vector<double> ratios_db;
  for (int k = 0; k < 100; ++k) {
    const auto amps =
        array_amplitudes(scen, tag, 4, calib::kCibCenterHz, rng);
    ASSERT_EQ(amps.size(), 4u);
    for (double a : amps) ratios_db.push_back(amplitude_to_db(a / v1));
  }
  // Jitter is ~N(0, 1 dB): mean near 0, spread near the configured sigma.
  EXPECT_NEAR(mean(ratios_db), 0.0, 0.2);
  EXPECT_NEAR(stddev(ratios_db), calib::kArrayAmplitudeJitterDb, 0.25);
}

TEST(ExperimentHelpers, ScenarioChannelHonoursMultipathSetting) {
  Rng rng(2);
  const auto tag = standard_tag();
  // Air corridor: single-ray channel.
  const auto los = draw_scenario_channel(air_scenario(2.0), tag, 3,
                                         calib::kCibCenterHz, rng);
  EXPECT_EQ(los.rays()[0].size(), 1u);
  // Tank: the scenario's multipath richness.
  const auto tank_scen = water_tank_scenario(0.05, 0.5);
  const auto tank = draw_scenario_channel(tank_scen, tag, 3,
                                          calib::kCibCenterHz, rng);
  EXPECT_EQ(tank.rays()[0].size(), tank_scen.multipath_rays);
}

TEST(ExperimentHelpers, SessionReproducibleFromSeed) {
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  Rng rng_a(33), rng_b(33);
  const auto a = run_gen2_session(air_scenario(3.0), standard_tag(), cfg,
                                  rng_a);
  const auto b = run_gen2_session(air_scenario(3.0), standard_tag(), cfg,
                                  rng_b);
  EXPECT_EQ(a.rn16_decoded, b.rn16_decoded);
  EXPECT_EQ(a.rn16, b.rn16);
  EXPECT_DOUBLE_EQ(a.peak_envelope_v, b.peak_envelope_v);
  EXPECT_DOUBLE_EQ(a.preamble_correlation, b.preamble_correlation);
}

TEST(ExperimentHelpers, SummariesMatchManualPercentiles) {
  std::vector<GainTrial> trials;
  for (int k = 1; k <= 100; ++k) {
    GainTrial t;
    t.cib_gain = k;
    t.baseline_gain = 100 - k + 1;
    trials.push_back(t);
  }
  const auto cib = summarize_cib(trials);
  const auto base = summarize_baseline(trials);
  EXPECT_NEAR(cib.p50, 50.5, 1e-9);
  EXPECT_NEAR(base.p50, 50.5, 1e-9);
  EXPECT_NEAR(cib.p10, 10.9, 1e-9);
  EXPECT_NEAR(cib.p90, 90.1, 1e-9);
}

// --- Query M field -> uplink modulation wiring.

std::vector<double> query_envelope(gen2::Miller m, double amplitude) {
  auto env = gen2::pie_encode(gen2::QueryCommand{.m = m, .q = 0}.encode(),
                              gen2::PieTiming{}, 800e3, true);
  for (auto& v : env) v *= amplitude;
  return env;
}

TEST(UplinkModulation, DefaultQueryYieldsFm0Reply) {
  TagDevice tag(standard_tag());
  const auto result =
      tag.receive_downlink(query_envelope(gen2::Miller::kFm0, 2.0), 800e3);
  ASSERT_TRUE(result.reply.has_value());
  EXPECT_EQ(tag.state_machine().uplink_modulation(), gen2::Miller::kFm0);
  const auto gamma = tag.backscatter_reflection(*result.reply, 800e3);
  const auto decoded = gen2::fm0_decode(gamma, 16, 40e3, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, *result.reply);
}

class MillerQuery : public ::testing::TestWithParam<gen2::Miller> {};

TEST_P(MillerQuery, ReplyUsesRequestedModulation) {
  TagDevice tag(standard_tag());
  const auto result =
      tag.receive_downlink(query_envelope(GetParam(), 2.0), 800e3);
  ASSERT_TRUE(result.reply.has_value());
  EXPECT_EQ(tag.state_machine().uplink_modulation(), GetParam());
  const auto gamma = tag.backscatter_reflection(*result.reply, 800e3);
  // Decodable with the matching Miller decoder...
  const auto decoded =
      gen2::miller_decode(GetParam(), gamma, 16, 40e3, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, *result.reply);
  // ...and NOT with plain FM0 at the same confidence.
  const auto wrong = gen2::fm0_decode(gamma, 16, 40e3, 800e3, 0.9);
  EXPECT_FALSE(wrong.valid && wrong.bits == *result.reply);
}

INSTANTIATE_TEST_SUITE_P(Modes, MillerQuery,
                         ::testing::Values(gen2::Miller::kM2,
                                           gen2::Miller::kM4,
                                           gen2::Miller::kM8));

}  // namespace
}  // namespace ivnet
