// Tests for ivnet/flow: streaming correctness (chunk-size invariance), block
// behaviours, and a CIB receive graph assembled from blocks.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ivnet/cib/objective.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/flow/flow.hpp"
#include "ivnet/signal/fir.hpp"

namespace ivnet::flow {
namespace {

TEST(Flow, VectorSourcePlaysEverythingOnce) {
  auto wave = make_tone(100.0, 0.0, 1000, 10e3);
  Flowgraph graph;
  graph.set_source(std::make_unique<VectorSource>(wave));
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  const std::size_t produced = graph.run(128);
  EXPECT_EQ(produced, 1000u);
  EXPECT_EQ(sink_ptr->samples(), wave.samples);
}

TEST(Flow, ToneSourceMatchesMakeTone) {
  Flowgraph graph;
  graph.set_source(std::make_unique<ToneSource>(250.0, 10e3, 2000, 0.4));
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  graph.run(333);  // deliberately odd chunking
  const auto reference = make_tone(250.0, 0.4, 2000, 10e3);
  ASSERT_EQ(sink_ptr->samples().size(), 2000u);
  for (std::size_t i = 0; i < 2000; i += 117) {
    EXPECT_NEAR(std::abs(sink_ptr->samples()[i] - reference.samples[i]), 0.0,
                1e-6);
  }
}

TEST(Flow, GainAndMixer) {
  Flowgraph graph;
  graph.set_source(std::make_unique<ToneSource>(0.0, 1e3, 100));
  graph.add_transform(std::make_unique<GainTransform>(cplx{2.0, 0.0}));
  graph.add_transform(std::make_unique<MixerTransform>(100.0, 1e3));
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  graph.run();
  // DC tone shifted to 100 Hz with amplitude 2.
  const auto& out = sink_ptr->samples();
  EXPECT_NEAR(std::abs(out[50]), 2.0, 1e-9);
  const double expected_phase = wrap_phase(kTwoPi * 100.0 * 50.0 / 1e3);
  EXPECT_NEAR(wrap_phase(std::arg(out[50])), expected_phase, 1e-6);
}

TEST(Flow, FirChunkInvariance) {
  // The streaming FIR must produce identical output for any chunk size.
  const auto taps = design_lowpass(1e3, 10e3, 31);
  auto wave = make_tone(500.0, 0.2, 3000, 10e3);
  std::vector<std::vector<cplx>> results;
  for (std::size_t chunk : {7u, 64u, 999u, 4096u}) {
    Flowgraph graph;
    graph.set_source(std::make_unique<VectorSource>(wave));
    graph.add_transform(std::make_unique<FirTransform>(taps));
    auto sink = std::make_unique<VectorSink>();
    auto* sink_ptr = sink.get();
    graph.set_sink(std::move(sink));
    graph.run(chunk);
    results.push_back(sink_ptr->samples());
  }
  for (std::size_t k = 1; k < results.size(); ++k) {
    ASSERT_EQ(results[k].size(), results[0].size());
    for (std::size_t i = 0; i < results[0].size(); i += 213) {
      EXPECT_NEAR(std::abs(results[k][i] - results[0][i]), 0.0, 1e-12);
    }
  }
}

TEST(Flow, DecimatorPhaseAcrossChunks) {
  auto wave = make_tone(0.0, 0.0, 1000, 1e3);
  for (std::size_t i = 0; i < wave.samples.size(); ++i) {
    wave.samples[i] = cplx{static_cast<double>(i), 0.0};
  }
  Flowgraph graph;
  graph.set_source(std::make_unique<VectorSource>(wave));
  graph.add_transform(std::make_unique<DecimatorTransform>(7));
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  graph.run(13);  // chunk not a multiple of the factor
  const auto& out = sink_ptr->samples();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].real(), static_cast<double>(7 * i));
  }
}

TEST(Flow, EnvelopeBlock) {
  Flowgraph graph;
  graph.set_source(std::make_unique<ToneSource>(100.0, 1e3, 64, 0.0, 3.0));
  graph.add_transform(std::make_unique<EnvelopeTransform>());
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  graph.run();
  for (const auto& s : sink_ptr->samples()) {
    EXPECT_NEAR(s.real(), 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.imag(), 0.0);
  }
}

TEST(Flow, AwgnAddsRequestedPower) {
  Flowgraph graph;
  graph.set_source(std::make_unique<ToneSource>(0.0, 1e3, 50000, 0.0, 0.0));
  graph.add_transform(std::make_unique<AwgnTransform>(0.5, 42));
  auto probe = std::make_unique<ProbeSink>();
  auto* probe_ptr = probe.get();
  graph.set_sink(std::move(probe));
  graph.run();
  EXPECT_NEAR(probe_ptr->mean_power(), 0.5, 0.02);
}

TEST(Flow, ProbeTracksPeak) {
  Waveform wave;
  wave.sample_rate_hz = 1.0;
  wave.samples = {cplx{1, 0}, cplx{0, 4}, cplx{2, 0}};
  Flowgraph graph;
  graph.set_source(std::make_unique<VectorSource>(wave));
  auto probe = std::make_unique<ProbeSink>();
  auto* probe_ptr = probe.get();
  graph.set_sink(std::move(probe));
  graph.run();
  EXPECT_NEAR(probe_ptr->peak_amplitude(), 4.0, 1e-12);
  EXPECT_EQ(probe_ptr->count(), 3u);
}

TEST(Flow, CibReceiveGraphMatchesAnalyticEnvelope) {
  // Assemble the CIB receive side as a flowgraph: one ToneSource per
  // antenna at its offset, summed through complex channel gains, envelope
  // detected — and check the peak against the analytic evaluator.
  const std::vector<double> offsets = {0, 7, 20, 49};
  const double fs = 4096.0;
  const std::size_t length = 4096;  // one second
  Rng rng(9);
  std::vector<double> phases(offsets.size());
  for (auto& p : phases) p = rng.phase();

  auto sum = std::make_unique<SumSource>();
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    sum->add_branch(
        std::make_unique<ToneSource>(offsets[i], fs, length, phases[i]),
        cplx{1.0, 0.0});
  }
  Flowgraph graph;
  graph.set_source(std::move(sum));
  graph.add_transform(std::make_unique<EnvelopeTransform>());
  auto probe = std::make_unique<ProbeSink>();
  auto* probe_ptr = probe.get();
  graph.set_sink(std::move(probe));
  graph.run(777);

  const double analytic = peak_envelope(offsets, phases, 1.0, 4096);
  EXPECT_NEAR(probe_ptr->peak_amplitude(), analytic, 0.02 * analytic);
}

TEST(Flow, SumSourcePadsShorterBranches) {
  auto sum = std::make_unique<SumSource>();
  sum->add_branch(std::make_unique<ToneSource>(0.0, 1e3, 100), {1.0, 0.0});
  sum->add_branch(std::make_unique<ToneSource>(0.0, 1e3, 40), {1.0, 0.0});
  Flowgraph graph;
  graph.set_source(std::move(sum));
  auto sink = std::make_unique<VectorSink>();
  auto* sink_ptr = sink.get();
  graph.set_sink(std::move(sink));
  graph.run(64);
  ASSERT_EQ(sink_ptr->samples().size(), 100u);
  EXPECT_NEAR(std::abs(sink_ptr->samples()[10]), 2.0, 1e-9);  // both alive
  EXPECT_NEAR(std::abs(sink_ptr->samples()[80]), 1.0, 1e-9);  // one ended
}

}  // namespace
}  // namespace ivnet::flow
