// Large-N frequency planner: the delta evaluator's memcmp contract against
// the retained full evaluation, the annealed search's structure and
// infeasibility handling, default_steps/planner_steps boundaries, and the
// content-hashed plan store (miss -> compute -> journal; hit -> zero
// evaluations, byte-identical plan record, across simulated restarts).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "ivnet/cib/delta_objective.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/campaign.hpp"
#include "ivnet/sim/planner.hpp"
#include "ivnet/svc/service.hpp"

namespace ivnet {
namespace {

bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// A deterministic spread start set: n distinct integers within [0, cap].
std::vector<double> spread_set(std::size_t n, double cap) {
  std::vector<double> offsets(n);
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] =
        std::floor(cap * static_cast<double>(i) / static_cast<double>(n));
  }
  return offsets;
}

// ------------------------------------------------- delta vs full evaluation

TEST(DeltaObjectiveTest, DeltaScoreStreamMemcmpEqualsFullRebuild) {
  // Random move/commit sequences at several (N, trials) shapes, including
  // ragged trial counts that do not divide the worker count: every
  // score_move and every post-commit score() must be bit-identical to the
  // from-scratch full_score rebuild of the same offset set.
  const std::size_t kAntennas[] = {2, 10, 64};
  const std::size_t kTrialCounts[] = {1, 7, 33};
  for (const std::size_t n : kAntennas) {
    for (const std::size_t trials : kTrialCounts) {
      const double cap = 64.0 + static_cast<double>(n);
      DeltaEvalConfig eval;
      eval.mc_trials = trials;
      eval.steps = 512;  // small grid: the contract is exact at any size
      DeltaEnvelopeState state(spread_set(n, cap), eval);
      EXPECT_TRUE(bit_equal(state.score(), state.full_score(state.offsets_hz())))
          << "n=" << n << " trials=" << trials << " (initial build)";

      Rng walk(1000 + n * 10 + trials);
      for (std::size_t m = 0; m < 12; ++m) {
        const auto tone = static_cast<std::size_t>(
            walk.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const double proposed = static_cast<double>(
            walk.uniform_int(0, static_cast<std::int64_t>(cap)));
        // Probe without mutating: the probe must equal the oracle score of
        // the probed set.
        std::vector<double> probed(state.offsets_hz().begin(),
                                   state.offsets_hz().end());
        probed[tone] = proposed;
        const double probe = state.score_move(tone, proposed);
        EXPECT_TRUE(bit_equal(probe, state.full_score(probed)))
            << "n=" << n << " trials=" << trials << " move " << m;
        if (m % 2 == 0) {
          // Commit: score() must land exactly on the probe, and stay
          // memcmp-equal to the rebuild despite the accumulated history.
          state.commit_move(tone, proposed);
          EXPECT_TRUE(bit_equal(state.score(), probe))
              << "n=" << n << " trials=" << trials << " commit " << m;
          EXPECT_TRUE(
              bit_equal(state.score(), state.full_score(state.offsets_hz())))
              << "n=" << n << " trials=" << trials << " rebuild " << m;
        }
      }
    }
  }
}

TEST(DeltaObjectiveTest, TracksDoublePrecisionOracleWithinQuantization) {
  // The fixed-point evaluator is a 2^-40-quantized version of the Eq. 6
  // scan: against the untouched double-precision expected_peak_amplitude
  // machinery it must agree to far better than the Monte-Carlo noise floor.
  const std::size_t n = 10;
  DeltaEvalConfig eval;
  eval.mc_trials = 8;
  eval.steps = 4096;
  const auto offsets = spread_set(n, 128.0);
  DeltaEnvelopeState state(offsets, eval);
  // Same grid, same phases, double precision: peak_amplitude_samples with
  // an explicit steps count and the delta state's own trial phases is not
  // directly callable here, so compare against a fresh state at doubled
  // resolution — the quantization error is orders below this tolerance.
  DeltaEvalConfig fine = eval;
  fine.steps = 8192;
  DeltaEnvelopeState fine_state(offsets, fine);
  EXPECT_NEAR(state.score(), fine_state.score(), 1e-3 * state.score());
}

TEST(DeltaObjectiveTest, PlannerStepsBoundaries) {
  // 16 samples/Hz/s with a floor of 256 and the documented ceiling.
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(1.0, 1.0), 256u);
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(100.0, 1.0), 1600u);
  const double at_ceiling =
      static_cast<double>(DeltaEnvelopeState::kMaxPlannerSteps) / 16.0;
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(at_ceiling, 1.0),
            DeltaEnvelopeState::kMaxPlannerSteps);
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(at_ceiling * 64.0, 1.0),
            DeltaEnvelopeState::kMaxPlannerSteps);
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(
                std::numeric_limits<double>::infinity(), 1.0),
            DeltaEnvelopeState::kMaxPlannerSteps);
  // A NaN offset falls out of the max(1, .) guard (same policy as
  // default_steps) and lands on the floor, not the ceiling.
  EXPECT_EQ(DeltaEnvelopeState::planner_steps(
                std::numeric_limits<double>::quiet_NaN(), 1.0),
            256u);
}

TEST(DeltaObjectiveTest, LargeNConstructionStaysExact) {
  // N = 256 — above anything the service exposes — still builds, scores,
  // and holds the memcmp contract.
  DeltaEvalConfig eval;
  eval.mc_trials = 4;
  eval.steps = 1024;
  DeltaEnvelopeState state(spread_set(256, 4096.0), eval);
  EXPECT_GT(state.score(), 0.0);
  EXPECT_TRUE(bit_equal(state.score(), state.full_score(state.offsets_hz())));
  state.commit_move(17, 2222.0);
  EXPECT_TRUE(bit_equal(state.score(), state.full_score(state.offsets_hz())));
}

// --------------------------------------------------- default_steps ceiling

TEST(DefaultStepsTest, CeilingAndBoundaries) {
  const double t = 1.0;
  // 16 * 65536 * 1.0 is exactly the 2^20 ceiling.
  {
    const std::vector<double> v = {65536.0};
    EXPECT_EQ(default_steps(v, t), kMaxDefaultSteps);
  }
  // Beyond it: clamped, never overflowing the size_t cast.
  {
    const std::vector<double> v = {1e12};
    EXPECT_EQ(default_steps(v, t), kMaxDefaultSteps);
  }
  {
    const std::vector<double> v = {std::numeric_limits<double>::infinity()};
    EXPECT_EQ(default_steps(v, t), kMaxDefaultSteps);
  }
  // NaN offsets fall out of std::max; the floor applies.
  {
    const std::vector<double> v = {std::numeric_limits<double>::quiet_NaN()};
    EXPECT_EQ(default_steps(v, t), 256u);
  }
  // NaN t_max would otherwise sail through std::clamp into a UB cast.
  {
    const std::vector<double> v = {100.0};
    EXPECT_EQ(default_steps(v, std::numeric_limits<double>::quiet_NaN()),
              kMaxDefaultSteps);
  }
  {
    const std::vector<double> v = {100.0};
    EXPECT_EQ(default_steps(v, t), 1600u);
  }
}

// ------------------------------------------------------- annealed search

TEST(AnnealedOptimizerTest, ProducesSortedDistinctFeasibleIntegerPlan) {
  OptimizerConfig cfg;
  cfg.num_antennas = 32;
  cfg.mc_trials = 8;
  cfg.restarts = 2;
  AnnealConfig anneal;
  anneal.moves = 80;
  FrequencyOptimizer opt(cfg);
  Rng rng(11);
  const OptimizerResult result = opt.optimize_annealed(anneal, rng);
  ASSERT_EQ(result.offsets_hz.size(), 32u);
  EXPECT_EQ(result.offsets_hz.front(), 0.0) << "reference tone stays at 0";
  std::set<long long> distinct;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < result.offsets_hz.size(); ++i) {
    const double f = result.offsets_hz[i];
    EXPECT_EQ(f, std::floor(f)) << "integer lattice";
    distinct.insert(std::llround(f));
    sum_sq += f * f;
    if (i > 0) EXPECT_GT(f, result.offsets_hz[i - 1]) << "sorted ascending";
  }
  EXPECT_EQ(distinct.size(), result.offsets_hz.size());
  const double rms = std::sqrt(sum_sq / 32.0);
  EXPECT_LE(rms, cfg.constraint.rms_limit_hz());
  EXPECT_EQ(result.rms_hz, rms);
  EXPECT_GT(result.score, 0.0);
  EXPECT_GT(result.evaluations, 2u);
}

TEST(AnnealedOptimizerTest, AnnealingImprovesOnTheStartSet) {
  // The search must not return something worse than its own start: best is
  // tracked across the walk, so score >= the first evaluation.
  OptimizerConfig cfg;
  cfg.num_antennas = 24;
  cfg.mc_trials = 8;
  cfg.restarts = 1;
  FrequencyOptimizer opt(cfg);
  AnnealConfig none;
  none.moves = 0;
  Rng rng_a(3);
  const double start_score = opt.optimize_annealed(none, rng_a).score;
  AnnealConfig anneal;
  anneal.moves = 120;
  Rng rng_b(3);
  const OptimizerResult searched = opt.optimize_annealed(anneal, rng_b);
  EXPECT_GE(searched.score, start_score);
}

TEST(AnnealedOptimizerTest, InfeasibleConstraintThrowsWithContext) {
  // n = 10 distinct integers need RMS >= sqrt(285/10) ~ 5.34 Hz; an 800 ms
  // query duration caps RMS at ~0.199 Hz — mathematically impossible.
  OptimizerConfig cfg;
  cfg.num_antennas = 10;
  cfg.mc_trials = 4;
  cfg.constraint.query_duration_s = 0.8;
  FrequencyOptimizer opt(cfg);
  AnnealConfig anneal;
  Rng rng(1);
  try {
    (void)opt.optimize_annealed(anneal, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no feasible offset set"), std::string::npos) << what;
    EXPECT_NE(what.find("10 distinct"), std::string::npos) << what;
    EXPECT_NE(what.find("query_duration_s"), std::string::npos) << what;
  }
  // The classic hill-climb shares the guard (its random_feasible would
  // otherwise loop forever).
  Rng rng2(1);
  EXPECT_THROW((void)opt.optimize(rng2), std::invalid_argument);
}

TEST(AnnealedOptimizerTest, TightButFeasibleConstraintFallsBackToRamp) {
  // Limit just above the mathematical minimum (~5.34 Hz at n = 10):
  // rejection sampling has essentially no feasible mass, so the bounded
  // sampler must fall back to a deterministic feasible ramp instead of
  // spinning or throwing.
  OptimizerConfig cfg;
  cfg.num_antennas = 10;
  cfg.mc_trials = 4;
  cfg.iterations = 5;
  cfg.restarts = 1;
  cfg.constraint.query_duration_s = 0.0289;  // limit ~5.51 Hz
  ASSERT_GT(cfg.constraint.rms_limit_hz(), 5.34);
  ASSERT_LT(cfg.constraint.rms_limit_hz(), 6.0);
  FrequencyOptimizer opt(cfg);
  Rng rng(5);
  const OptimizerResult result = opt.optimize(rng);
  ASSERT_EQ(result.offsets_hz.size(), 10u);
  EXPECT_LE(result.rms_hz, cfg.constraint.rms_limit_hz());
  std::set<long long> distinct;
  for (double f : result.offsets_hz) distinct.insert(std::llround(f));
  EXPECT_EQ(distinct.size(), 10u);

  AnnealConfig anneal;
  anneal.moves = 20;
  Rng rng2(5);
  const OptimizerResult annealed = opt.optimize_annealed(anneal, rng2);
  EXPECT_LE(annealed.rms_hz, cfg.constraint.rms_limit_hz());
}

// ------------------------------------------------------------- plan store

std::string temp_plan_journal(const std::string& name) {
  return testing::TempDir() + "freq_plans_" + name + ".jsonl";
}

TEST(PlanStoreTest, RePlanIsAJournalHitWithZeroEvaluations) {
  const std::string path = temp_plan_journal("replan");
  std::remove(path.c_str());
  CellCache::instance().clear();

  FrequencyPlanRequest request;
  request.antennas = 16;
  request.mc_trials = 4;
  request.moves = 30;
  request.restarts = 1;

  obs::MetricsRegistry first_metrics;
  obs::install({.metrics = &first_metrics, .tracer = nullptr});
  const FrequencyPlanOutcome first = plan_frequencies(request, path);
  obs::install_null();
  EXPECT_FALSE(first.cached);
  EXPECT_GT(first.evaluations, 0u);
  ASSERT_EQ(first.offsets_hz.size(), 16u);
  EXPECT_GT(first.score, 0.0);
  {
    const std::string snapshot = first_metrics.snapshot_json();
    EXPECT_NE(snapshot.find("planner.cache.misses"), std::string::npos);
    EXPECT_NE(snapshot.find("planner.evals"), std::string::npos);
    EXPECT_NE(snapshot.find("planner.plan.seconds"), std::string::npos);
  }

  // Simulate a process restart: wipe the in-memory memo, keep the journal.
  CellCache::instance().clear();

  obs::MetricsRegistry second_metrics;
  obs::install({.metrics = &second_metrics, .tracer = nullptr});
  const FrequencyPlanOutcome again = plan_frequencies(request, path);
  obs::install_null();
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.evaluations, 0u) << "a hit must not evaluate anything";
  EXPECT_EQ(again.plan_json, first.plan_json)
      << "the stored plan record is byte-identical across the restart";
  EXPECT_EQ(again.scenario_hash, first.scenario_hash);
  EXPECT_TRUE(bit_equal(again.score, first.score))
      << "JsonWriter doubles round-trip exactly";
  EXPECT_EQ(again.offsets_hz, first.offsets_hz);
  {
    const std::string snapshot = second_metrics.snapshot_json();
    EXPECT_NE(snapshot.find("planner.cache.hits"), std::string::npos);
    EXPECT_EQ(snapshot.find("planner.evals"), std::string::npos)
        << "zero objective evaluations on the hit path";
    EXPECT_EQ(snapshot.find("planner.moves"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(PlanStoreTest, MemoHitWithoutJournalWithinOneProcess) {
  CellCache::instance().clear();
  FrequencyPlanRequest request;
  request.antennas = 8;
  request.mc_trials = 4;
  request.moves = 16;
  request.restarts = 1;
  const FrequencyPlanOutcome first = plan_frequencies(request);
  EXPECT_FALSE(first.cached);
  const FrequencyPlanOutcome again = plan_frequencies(request);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.plan_json, first.plan_json);
}

TEST(PlanStoreTest, ContentHashSeparatesScenarios) {
  // Any parameter change re-plans; the hash is a pure function of the
  // canonical parameter set.
  FrequencyPlanRequest a;
  a.antennas = 8;
  FrequencyPlanRequest b = a;
  b.seed = a.seed + 1;
  FrequencyPlanRequest c = a;
  c.mc_trials = a.mc_trials + 1;
  const std::uint64_t ha = freq_plan_cell(a).content_hash();
  EXPECT_EQ(ha, freq_plan_cell(a).content_hash());
  EXPECT_NE(ha, freq_plan_cell(b).content_hash());
  EXPECT_NE(ha, freq_plan_cell(c).content_hash());
}

TEST(PlanStoreTest, HitConsumesNoRandomness) {
  // The hit path must not touch any RNG: planning twice and drawing from a
  // seeded generator afterwards gives the same value as planning once.
  // (plan_frequencies owns its RNG internally, so the global determinism
  // proxy is the stored record: a hit returns the journal bytes verbatim
  // and spends zero evaluations — checked above — and repeated hits are
  // stable.)
  CellCache::instance().clear();
  FrequencyPlanRequest request;
  request.antennas = 6;
  request.mc_trials = 2;
  request.moves = 8;
  request.restarts = 1;
  const FrequencyPlanOutcome first = plan_frequencies(request);
  const FrequencyPlanOutcome h1 = plan_frequencies(request);
  const FrequencyPlanOutcome h2 = plan_frequencies(request);
  EXPECT_TRUE(h1.cached);
  EXPECT_TRUE(h2.cached);
  EXPECT_EQ(h1.plan_json, first.plan_json);
  EXPECT_EQ(h2.plan_json, first.plan_json);
}

// ------------------------------------------------------------ service kPlan

TEST(PlanServiceTest, PlanDigestInvariantAcrossWorkerCounts) {
  // The kPlan response (and so the service digest) must be a pure function
  // of the request, whatever the worker count and whether the plan came
  // from the search or the store.
  auto run_plan = [](std::size_t workers) {
    CellCache::instance().clear();
    svc::ServiceConfig config;
    config.workers = workers;
    std::vector<svc::Response> captured;
    std::mutex mutex;
    svc::InventoryService service(config, [&](const svc::Response& r) {
      std::lock_guard<std::mutex> lock(mutex);
      captured.push_back(r);
    });
    svc::Request request;
    request.kind = svc::RequestKind::kPlan;
    request.id = 42;
    request.seed = 7;
    request.antennas = 6;
    EXPECT_TRUE(service.submit(request));
    service.stop();
    EXPECT_EQ(captured.size(), 1u);
    return captured.empty() ? 0u : svc::response_hash(captured.front());
  };
  const std::uint64_t reference = run_plan(1);
  EXPECT_NE(reference, 0u);
  for (const std::size_t workers : {2u, 8u}) {
    EXPECT_EQ(run_plan(workers), reference) << "workers " << workers;
  }
  // And a cache-served plan hashes identically to a computed one: repeat
  // without clearing the memo.
  svc::ServiceConfig config;
  config.workers = 2;
  std::vector<svc::Response> captured;
  std::mutex mutex;
  svc::InventoryService service(config, [&](const svc::Response& r) {
    std::lock_guard<std::mutex> lock(mutex);
    captured.push_back(r);
  });
  svc::Request request;
  request.kind = svc::RequestKind::kPlan;
  request.id = 42;
  request.seed = 7;
  request.antennas = 6;
  EXPECT_TRUE(service.submit(request));
  service.stop();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(svc::response_hash(captured.front()), reference)
      << "a store-served plan is indistinguishable from a computed one";
}

}  // namespace
}  // namespace ivnet
