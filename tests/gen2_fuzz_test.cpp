// Fuzz/property tests for the Gen2 protocol stack: randomized round-trips
// across air-interface parameters, corruption detection, decoder robustness
// against garbage, and state-machine safety under random command streams.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/memory.hpp"
#include "ivnet/gen2/miller.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"
#include "ivnet/impair/impairment.hpp"

namespace ivnet::gen2 {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.uniform() < 0.5;
  return bits;
}

// --- PIE round-trips across Tari values (the air interface allows
// --- 6.25-25 us; the decoder must infer everything from RTcal).
class PieTariSweep : public ::testing::TestWithParam<double> {};

TEST_P(PieTariSweep, RandomPayloadsRoundTrip) {
  PieTiming timing;
  timing.tari_s = GetParam();
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1e9));
  for (int k = 0; k < 10; ++k) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 64));
    const Bits payload = random_bits(n, rng);
    const auto env = pie_encode(payload, timing, 1.6e6, k % 2 == 0);
    const auto decoded = pie_decode(env, 1.6e6);
    ASSERT_TRUE(decoded.valid) << "tari " << GetParam() << " len " << n;
    EXPECT_EQ(decoded.bits, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Tari, PieTariSweep,
                         ::testing::Values(6.25e-6, 12.5e-6, 25e-6));

// --- Data-1 length factor sweep (spec allows 1.5-2.0 Tari).
class PieData1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(PieData1Sweep, RoundTripAtAnyLegalFactor) {
  PieTiming timing;
  timing.data1_factor = GetParam();
  Rng rng(77);
  const Bits payload = random_bits(32, rng);
  const auto env = pie_encode(payload, timing, 800e3, true);
  const auto decoded = pie_decode(env, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, payload);
}

INSTANTIATE_TEST_SUITE_P(Factors, PieData1Sweep,
                         ::testing::Values(1.5, 1.7, 2.0));

// --- Corruption detection: every single-bit flip in a CRC-protected
// --- command must be rejected.
TEST(Corruption, QueryCrc5CatchesAllSingleBitFlips) {
  const auto bits = QueryCommand{.q = 7}.encode();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    Bits corrupted = bits;
    corrupted[i] = !corrupted[i];
    const auto parsed = QueryCommand::parse(corrupted);
    // A flip in the leading command code makes it a different command
    // (parse fails on the prefix); any other flip must fail the CRC.
    EXPECT_FALSE(parsed.has_value()) << "flip at " << i;
  }
}

TEST(Corruption, ReadCommandCrc16CatchesAllSingleBitFlips) {
  const auto bits = ReadCommand{.word_addr = 3, .word_count = 2,
                                .handle = 0x5A5A}
                        .encode();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    Bits corrupted = bits;
    corrupted[i] = !corrupted[i];
    EXPECT_FALSE(ReadCommand::parse(corrupted).has_value()) << i;
  }
}

TEST(Corruption, RandomDoubleFlipsCaughtByCrc16) {
  Rng rng(5);
  const auto frame = read_reply({0x1234, 0xABCD}, 0x9999);
  int missed = 0;
  for (int k = 0; k < 300; ++k) {
    Bits corrupted = frame;
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    auto j = i;
    while (j == i) {
      j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    }
    corrupted[i] = !corrupted[i];
    corrupted[j] = !corrupted[j];
    if (!parse_read_reply(corrupted, 2, 0x9999).empty()) ++missed;
  }
  EXPECT_EQ(missed, 0);  // CRC-16 catches all double-bit errors at this size
}

// --- Decoder robustness: random garbage must never crash and must
// --- (essentially always) be rejected by the correlation gates.
TEST(Garbage, Fm0DecoderRejectsNoise) {
  Rng rng(6);
  int accepted = 0;
  for (int k = 0; k < 30; ++k) {
    std::vector<double> junk(2000 + 100 * k);
    for (auto& v : junk) v = rng.normal(0.0, 1.0);
    const auto decoded = fm0_decode(junk, 16, 40e3, 800e3, 0.8);
    accepted += decoded.valid;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Garbage, MillerDecoderRejectsNoise) {
  Rng rng(7);
  int accepted = 0;
  for (int k = 0; k < 20; ++k) {
    std::vector<double> junk(4000);
    for (auto& v : junk) v = rng.normal(0.0, 1.0);
    accepted += miller_decode(Miller::kM4, junk, 16, 40e3, 1.6e6, 0.8).valid;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(Garbage, PieDecoderHandlesDegenerateInputs) {
  // Empty, constant, all-zero, single-edge inputs: no crash, no bogus
  // acceptance of data bits.
  const std::vector<double> empty;
  EXPECT_FALSE(pie_decode(empty, 800e3).valid);
  const std::vector<double> flat(5000, 1.0);
  const auto flat_decoded = pie_decode(flat, 800e3);
  EXPECT_FALSE(flat_decoded.valid && !flat_decoded.bits.empty());
  const std::vector<double> zeros(5000, 0.0);
  EXPECT_FALSE(pie_decode(zeros, 800e3).valid);
  std::vector<double> one_edge(5000, 1.0);
  for (std::size_t i = 2500; i < 5000; ++i) one_edge[i] = 0.0;
  const auto edge_decoded = pie_decode(one_edge, 800e3);
  EXPECT_FALSE(edge_decoded.valid && !edge_decoded.bits.empty());
}

// --- State-machine safety: arbitrary command streams keep the tag in a
// --- legal state and never produce malformed frames.
TEST(StateMachineFuzz, RandomCommandStreamsAreSafe) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    TagStateMachine tag(random_bits(96, rng), 1000 + trial);
    tag.power_up();
    for (int step = 0; step < 200; ++step) {
      Bits command;
      switch (rng.uniform_int(0, 6)) {
        case 0:
          command = QueryCommand{.q = static_cast<std::uint8_t>(
                                     rng.uniform_int(0, 15))}
                        .encode();
          break;
        case 1:
          command = QueryRepCommand{}.encode();
          break;
        case 2:
          command = AckCommand{.rn16 = static_cast<std::uint16_t>(
                                   rng.uniform_int(0, 0xFFFF))}
                        .encode();
          break;
        case 3:
          command = ReqRnCommand{.rn16 = tag.last_rn16()}.encode();
          break;
        case 4:
          command = ReadCommand{.handle = tag.handle()}.encode();
          break;
        case 5:
          command = random_bits(
              static_cast<std::size_t>(rng.uniform_int(1, 80)), rng);
          break;
        default: {
          SelectCommand sel;
          sel.mask = random_bits(8, rng);
          command = sel.encode();
          break;
        }
      }
      const auto reply = tag.on_command(command);
      if (reply.has_value()) {
        // Every reply the tag emits is one of the legal frame sizes.
        const auto n = reply->size();
        const bool legal_size =
            n == 16 ||                  // RN16
            n == 128 ||                 // PC + EPC + CRC16
            n == 32 ||                  // handle reply
            n == 33 ||                  // read reply, 0 words (n/a) guard
            (n >= 33 && (n - 33) % 16 == 0);  // read replies
        EXPECT_TRUE(legal_size) << n;
      }
    }
    // The tag is still in a recognized state.
    const auto state = tag.state();
    EXPECT_TRUE(state == TagState::kReady || state == TagState::kArbitrate ||
                state == TagState::kReply ||
                state == TagState::kAcknowledged ||
                state == TagState::kOpen);
  }
}

// --- Miller/FM0 round-trips across BLF values.
class BlfSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlfSweep, Fm0RoundTripAtAnyBlf) {
  const double blf = GetParam();
  Rng rng(static_cast<std::uint64_t>(blf));
  const Bits bits = random_bits(16, rng);
  const double fs = blf * 40.0;  // 20 samples per half-bit
  const auto sig = fm0_modulate(bits, blf, fs);
  const auto decoded = fm0_decode(sig, 16, blf, fs);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, bits);
}

INSTANTIATE_TEST_SUITE_P(Blf, BlfSweep,
                         ::testing::Values(40e3, 160e3, 320e3, 640e3));

// --- Miller fuzz across every subcarrier mode: random payloads round-trip
// --- and pure noise never clears the correlation gate.
class MillerModeSweep : public ::testing::TestWithParam<Miller> {};

TEST_P(MillerModeSweep, RandomPayloadsRoundTrip) {
  const Miller mode = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(mode));
  for (int k = 0; k < 10; ++k) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 48));
    const Bits payload = random_bits(n, rng);
    const auto sig = miller_modulate(mode, payload, 40e3, 1.6e6);
    const auto decoded = miller_decode(mode, sig, n, 40e3, 1.6e6);
    ASSERT_TRUE(decoded.valid) << "m=" << static_cast<int>(mode)
                               << " len " << n;
    EXPECT_EQ(decoded.bits, payload);
  }
}

TEST_P(MillerModeSweep, DecoderRejectsNoise) {
  const Miller mode = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(mode));
  int accepted = 0;
  for (int k = 0; k < 20; ++k) {
    std::vector<double> junk(4000 + 200 * k);
    for (auto& v : junk) v = rng.normal(0.0, 1.0);
    accepted += miller_decode(mode, junk, 16, 40e3, 1.6e6, 0.8).valid;
  }
  EXPECT_EQ(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, MillerModeSweep,
                         ::testing::Values(Miller::kM2, Miller::kM4,
                                           Miller::kM8));

// --- Impairment-layer fuzz: frames piped through random impairment chains
// --- must never crash the decoders, and a frame whose CRC was flipped
// --- before modulation must never come back as a CRC-valid frame.
ImpairmentConfig random_impairments(Rng& rng) {
  // Mild regime: the uplink impairments act multiplicatively on a real
  // envelope, so CFO/phase noise must stay small relative to the ~2 ms
  // frame for the correlation gate to keep accepting frames.
  ImpairmentConfig impair;
  impair.snr_db = rng.uniform(12.0, 40.0);  // above the decoder cliff
  impair.cfo_hz = rng.uniform(0.0, 10.0);
  impair.phase_noise_linewidth_hz = rng.uniform(0.0, 2.0);
  impair.clock_drift_ppm = rng.uniform(0.0, 10.0);
  if (rng.uniform() < 0.3) {
    impair.bursts = {.rate_hz = rng.uniform(0.0, 50.0),
                     .mean_duration_s = 1e-4,
                     .depth_db = 40.0};
  }
  return impair;
}

TEST(ImpairmentFuzz, FlippedCrcFramesNeverDecodeValid) {
  // Build payload+CRC16 frames, flip one random bit, modulate (FM0 or any
  // Miller mode), impair, decode. Whenever the correlation gate accepts the
  // waveform, the recovered bits must still fail check_crc16.
  Rng rng(4242);
  int decoded_frames = 0;
  for (int k = 0; k < 60; ++k) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(8, 64));
    Bits frame = random_bits(n, rng);
    append_bits(frame, crc16(frame), 16);
    const auto flip = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
    frame[flip] = !frame[flip];

    const ImpairmentChain chain(random_impairments(rng));
    Bits recovered;
    bool valid = false;
    if (k % 4 == 0) {
      const auto sig = fm0_modulate(frame, 40e3, 1.6e6);
      const auto dirty = chain.apply(sig, 1.6e6, rng);
      const auto decoded = fm0_decode(dirty, frame.size(), 40e3, 1.6e6);
      valid = decoded.valid;
      recovered = decoded.bits;
    } else {
      const auto mode = std::array{Miller::kM2, Miller::kM4,
                                   Miller::kM8}[k % 3];
      const auto sig = miller_modulate(mode, frame, 40e3, 1.6e6);
      const auto dirty = chain.apply(sig, 1.6e6, rng);
      const auto decoded =
          miller_decode(mode, dirty, frame.size(), 40e3, 1.6e6);
      valid = decoded.valid;
      recovered = decoded.bits;
    }
    if (valid) {
      ++decoded_frames;
      EXPECT_FALSE(check_crc16(recovered)) << "trial " << k;
    }
  }
  // The impairments are mild enough that the gate accepts most frames —
  // otherwise this test would be vacuous.
  EXPECT_GT(decoded_frames, 30);
}

TEST(ImpairmentFuzz, ChainNeverCrashesOnDegenerateInputs) {
  Rng rng(99);
  for (int k = 0; k < 40; ++k) {
    ImpairmentConfig impair = random_impairments(rng);
    impair.snr_db = rng.uniform(-20.0, 20.0);  // including hopeless SNRs
    const ImpairmentChain chain(impair);
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 3000));
    std::vector<double> x(n);
    for (auto& v : x) v = rng.normal(0.0, 1.0);
    const auto y = chain.apply(x, 1.6e6, rng);
    EXPECT_EQ(y.size(), x.size());
    for (const auto v : y) EXPECT_TRUE(std::isfinite(v));
    // Feeding the impaired junk to every decoder must be safe too.
    (void)fm0_decode(y, 16, 40e3, 1.6e6);
    (void)miller_decode(Miller::kM8, y, 16, 40e3, 1.6e6);
    (void)pie_decode(y, 1.6e6);
  }
}

TEST(ImpairmentFuzz, GarbledQueryNeverParsesWithBadCrc) {
  // PIE-encode a Query, corrupt random half-bit spans of the envelope, and
  // re-decode: any bit vector the PIE decoder emits either parses as a
  // CRC-valid Query (unchanged payload) or fails QueryCommand::parse.
  Rng rng(31337);
  const auto query = QueryCommand{.q = 4}.encode();
  const PieTiming timing;
  const auto clean = pie_encode(query, timing, 800e3, true);
  for (int k = 0; k < 100; ++k) {
    auto env = clean;
    const auto span = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(env.size() - span)));
    for (std::size_t i = at; i < at + span; ++i) env[i] = 1.0 - env[i];
    const auto decoded = pie_decode(env, 800e3);
    if (!decoded.valid || decoded.bits.empty()) continue;
    const auto parsed = QueryCommand::parse(decoded.bits);
    if (parsed.has_value()) {
      EXPECT_EQ(decoded.bits, query) << "trial " << k;
    }
  }
}

}  // namespace
}  // namespace ivnet::gen2
