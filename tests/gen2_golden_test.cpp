// Golden-vector tests for the Gen2 encoders: spec-quoted constants checked
// against hand-computed values, so an implementation drift that happens to
// stay self-consistent (encode+decode both wrong) still fails.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/pie.hpp"

namespace ivnet::gen2 {
namespace {

Bits bits_from_string(const char* s) {
  Bits bits;
  for (; *s != '\0'; ++s) bits.push_back(*s == '1');
  return bits;
}

Bits bits_from_bytes(std::initializer_list<std::uint8_t> bytes) {
  Bits bits;
  for (auto byte : bytes) append_bits(bits, byte, 8);
  return bits;
}

// --- CRC-5: poly x^5 + x^3 + 1, preset 0b01001 (ISO 18000-63 Annex F).

TEST(Crc5Golden, EmptyInputIsThePreset) {
  EXPECT_EQ(crc5({}), 0b01001);
}

TEST(Crc5Golden, HandComputedVectors) {
  // Worked by hand from the shift-register definition.
  EXPECT_EQ(crc5(bits_from_string("1")), 0b11011);
  EXPECT_EQ(crc5(bits_from_string("101")), 30);
  // Query command-code prefix '1000' followed by 13 zero payload bits.
  EXPECT_EQ(crc5(bits_from_string("10000000000000000")), 16);
}

TEST(Crc5Golden, QueryEncodeAppendsMatchingCrc) {
  const auto query = QueryCommand{.q = 7}.encode();
  ASSERT_EQ(query.size(), 22u);
  const Bits payload(query.begin(), query.end() - 5);
  EXPECT_EQ(crc5(payload), 6u);
  EXPECT_EQ(read_bits(query, 17, 5), 6u);
  EXPECT_TRUE(check_crc5(query));
}

// --- CRC-16: CCITT poly 0x1021, preset 0xFFFF, complemented output.

TEST(Crc16Golden, EmptyAndSingleBit) {
  EXPECT_EQ(crc16({}), 0x0000);     // ~0xFFFF
  EXPECT_EQ(crc16(bits_from_string("1")), 0x0001);
}

TEST(Crc16Golden, CheckStringVector) {
  // The canonical CRC-16/CCITT check input "123456789" (ASCII, MSB-first).
  const auto bits = bits_from_bytes({0x31, 0x32, 0x33, 0x34, 0x35, 0x36,
                                     0x37, 0x38, 0x39});
  EXPECT_EQ(crc16(bits), 0xD64E);
}

TEST(Crc16Golden, FrameResidueIsE2F0) {
  // ISO 18000-63 Annex F: a frame followed by its (complemented) CRC-16
  // leaves the non-complemented register at the fixed residue 0x1D0F,
  // i.e. this implementation's complemented recompute equals 0xE2F0.
  const auto frame = bits_from_bytes({0x31, 0x32, 0x33, 0x34});
  Bits with_crc = frame;
  append_bits(with_crc, crc16(frame), 16);
  EXPECT_EQ(crc16(with_crc), 0xE2F0);
  EXPECT_TRUE(check_crc16(with_crc));
}

// --- FM0 preamble: the spec's TRext=0 start-of-frame half-bit pattern.

TEST(Fm0Golden, PreambleHalfBitsMatchSpec) {
  const auto halves = fm0_encode_halfbits({});
  // Preamble (12 half-bits) + closing dummy data-1 (2 half-bits).
  ASSERT_EQ(halves.size(), 14u);
  const auto expected = bits_from_string("110100100011");
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(halves[i], static_cast<bool>(expected[i])) << "half-bit " << i;
  }
}

TEST(Fm0Golden, PreambleTemplateLevels) {
  // 2 samples per half-bit at fs = 4 * BLF.
  const auto tmpl = fm0_preamble_template(40e3, 160e3);
  ASSERT_EQ(tmpl.size(), 24u);
  const auto expected = bits_from_string("110100100011");
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    EXPECT_EQ(tmpl[i], expected[i / 2] ? 1.0 : -1.0) << "sample " << i;
  }
}

TEST(Fm0Golden, DataEncodingRules) {
  // After the preamble (ends high): every symbol starts with an inversion,
  // data-0 adds a mid-symbol inversion, data-1 holds its level.
  const auto halves = fm0_encode_halfbits(bits_from_string("10"));
  // preamble(12) + '1'(2) + '0'(2) + dummy-1(2)
  ASSERT_EQ(halves.size(), 18u);
  EXPECT_EQ(halves[12], false);  // '1': invert off the high preamble tail
  EXPECT_EQ(halves[13], false);  //      ...and hold
  EXPECT_EQ(halves[14], true);   // '0': invert again
  EXPECT_EQ(halves[15], false);  //      ...and invert mid-symbol
  EXPECT_EQ(halves[16], true);   // dummy '1': invert and hold
  EXPECT_EQ(halves[17], true);
}

// --- PIE: edge timings of the encoded envelope against RTcal/TRcal.

TEST(PieGolden, DefaultTimingRelations) {
  const PieTiming t;
  EXPECT_DOUBLE_EQ(t.rtcal_s(), t.data0_s() + t.data1_s());
  EXPECT_DOUBLE_EQ(t.rtcal_s(), 3.0 * t.tari_s);
  EXPECT_DOUBLE_EQ(t.trcal_s(), 5.0 * t.tari_s);
  EXPECT_DOUBLE_EQ(t.pw_s(), 0.5 * t.tari_s);
}

std::vector<std::size_t> falling_edges(const std::vector<double>& env) {
  std::vector<std::size_t> falls;
  for (std::size_t i = 1; i < env.size(); ++i) {
    if (env[i - 1] >= 0.5 && env[i] < 0.5) falls.push_back(i);
  }
  return falls;
}

TEST(PieGolden, PreambleEdgeIntervals) {
  // fs = 800 kHz, Tari = 25 us -> 20 samples; PW = 10; delimiter = 10.
  const PieTiming t;
  const double fs = 800e3;
  const auto env = pie_encode(bits_from_string("01"), t, fs, true);
  const auto falls = falling_edges(env);
  // Falls: delimiter, data-0, RTcal, TRcal, data-0, data-1.
  ASSERT_EQ(falls.size(), 6u);
  // Interval between falls k and k+1 equals the length of symbol k+1
  // (delimiter low is 12.5 us = PW, so delimiter->data-0 is one Tari).
  EXPECT_EQ(falls[1] - falls[0], 20u);   // data-0 reference: 1 Tari
  EXPECT_EQ(falls[2] - falls[1], 60u);   // RTcal = 3 Tari
  EXPECT_EQ(falls[3] - falls[2], 100u);  // TRcal = 5 Tari
  EXPECT_EQ(falls[4] - falls[3], 20u);   // payload '0'
  EXPECT_EQ(falls[5] - falls[4], 40u);   // payload '1' = 2 Tari

  const auto decoded = pie_decode(env, fs);
  ASSERT_TRUE(decoded.valid);
  EXPECT_TRUE(decoded.saw_preamble);
  EXPECT_EQ(decoded.bits, bits_from_string("01"));
  EXPECT_NEAR(decoded.measured_rtcal_s, t.rtcal_s(), 2.0 / fs);
  EXPECT_NEAR(decoded.measured_trcal_s, t.trcal_s(), 2.0 / fs);
}

TEST(PieGolden, FrameSyncOmitsTrcal) {
  const PieTiming t;
  const auto env = pie_encode(bits_from_string("0"), t, 800e3, false);
  const auto falls = falling_edges(env);
  // Falls: delimiter, data-0, RTcal, payload '0' — no TRcal symbol.
  ASSERT_EQ(falls.size(), 4u);
  EXPECT_EQ(falls[2] - falls[1], 60u);
  const auto decoded = pie_decode(env, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_FALSE(decoded.saw_preamble);
}

}  // namespace
}  // namespace ivnet::gen2
