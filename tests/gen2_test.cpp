// Tests for ivnet/gen2: CRCs, PIE encode/decode, FM0 encode/decode (with the
// paper's 12-bit preamble and 0.8 correlation criterion), commands, and the
// tag inventory state machine.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"

namespace ivnet::gen2 {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.uniform() < 0.5;
  return bits;
}

TEST(Crc, AppendBitsRoundTrip) {
  Bits bits;
  append_bits(bits, 0b1011, 4);
  append_bits(bits, 0xABCD, 16);
  ASSERT_EQ(bits.size(), 20u);
  EXPECT_EQ(read_bits(bits, 0, 4), 0b1011u);
  EXPECT_EQ(read_bits(bits, 4, 16), 0xABCDu);
}

TEST(Crc, Crc5RoundTrip) {
  Rng rng(1);
  for (int k = 0; k < 50; ++k) {
    Bits payload = random_bits(17, rng);
    Bits framed = payload;
    append_bits(framed, crc5(payload), 5);
    EXPECT_TRUE(check_crc5(framed));
    framed[3] = !framed[3];
    EXPECT_FALSE(check_crc5(framed));
  }
}

TEST(Crc, Crc16RoundTripAndErrorDetection) {
  Rng rng(2);
  for (int k = 0; k < 50; ++k) {
    Bits payload = random_bits(96, rng);
    Bits framed = payload;
    append_bits(framed, crc16(payload), 16);
    EXPECT_TRUE(check_crc16(framed));
    const auto flip = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(framed.size()) - 1));
    framed[flip] = !framed[flip];
    EXPECT_FALSE(check_crc16(framed));
  }
}

TEST(Crc, Crc16KnownValue) {
  // CRC-16/CCITT-FALSE of "123456789" (as bytes MSB-first) is 0x29B1;
  // the Gen2 variant transmits the complement.
  Bits bits;
  for (char c : std::string("123456789")) {
    append_bits(bits, static_cast<std::uint32_t>(c), 8);
  }
  EXPECT_EQ(crc16(bits), static_cast<std::uint16_t>(~0x29B1));
}

TEST(Pie, EncodeDecodeRoundTripWithPreamble) {
  Rng rng(3);
  const PieTiming timing;
  for (int k = 0; k < 20; ++k) {
    const Bits bits = random_bits(22, rng);
    const auto env = pie_encode(bits, timing, 800e3, /*with_preamble=*/true);
    const auto decoded = pie_decode(env, 800e3);
    ASSERT_TRUE(decoded.valid);
    EXPECT_TRUE(decoded.saw_preamble);
    EXPECT_EQ(decoded.bits, bits);
    EXPECT_NEAR(decoded.measured_rtcal_s, timing.rtcal_s(), 2e-6);
    EXPECT_NEAR(decoded.measured_trcal_s, timing.trcal_s(), 2e-6);
  }
}

TEST(Pie, EncodeDecodeRoundTripFrameSync) {
  const Bits bits = {true, false, true, true};
  const auto env = pie_encode(bits, PieTiming{}, 800e3, /*with_preamble=*/false);
  const auto decoded = pie_decode(env, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_FALSE(decoded.saw_preamble);
  EXPECT_EQ(decoded.bits, bits);
}

TEST(Pie, DecodeSurvivesAmplitudeScaling) {
  const Bits bits = {true, false, false, true, true, false};
  auto env = pie_encode(bits, PieTiming{}, 800e3, true);
  for (auto& v : env) v *= 0.037;  // attenuated but clean
  const auto decoded = pie_decode(env, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, bits);
}

TEST(Pie, DecodeToleratesModerateEnvelopeRipple) {
  // Eq. 7: fluctuation below alpha = 0.5 must still decode.
  const Bits bits = {true, false, true, false, true};
  auto env = pie_encode(bits, PieTiming{}, 800e3, true);
  for (std::size_t i = 0; i < env.size(); ++i) {
    env[i] *= 1.0 - 0.3 * 0.5 * (1.0 + std::sin(0.0008 * double(i)));
  }
  const auto decoded = pie_decode(env, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, bits);
}

TEST(Pie, DecodeRejectsExcessiveFluctuation) {
  // Fluctuation beyond 0.5 breaks envelope slicing (Sec. 3.6(b)).
  const Bits bits = {true, false, true, false, true};
  auto env = pie_encode(bits, PieTiming{}, 800e3, true);
  // 70% envelope swing with several dips inside the command window: the
  // carrier highs fall below the slicing threshold and decoding breaks.
  for (std::size_t i = 0; i < env.size(); ++i) {
    env[i] *= 1.0 - 0.35 * (1.0 + std::sin(0.02 * double(i)));
  }
  const auto decoded = pie_decode(env, 800e3);
  EXPECT_FALSE(decoded.valid && decoded.bits == bits);
}

TEST(Fm0, PreambleIsThePaperPattern) {
  // Sec. 6.2: preamble "110100100011".
  const auto& p = fm0_preamble_halfbits();
  const std::vector<bool> expect = {1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 1};
  EXPECT_EQ(p, expect);
}

TEST(Fm0, EncodeObeysBoundaryInversions) {
  const Bits bits = {true, false, true, true, false};
  const auto halves = fm0_encode_halfbits(bits);
  // After the 12 preamble halves: every symbol starts by inverting the
  // previous half; data-0 inverts again mid-symbol.
  bool prev = halves[11];
  for (std::size_t b = 0; b < bits.size(); ++b) {
    const bool h0 = halves[12 + 2 * b];
    const bool h1 = halves[12 + 2 * b + 1];
    EXPECT_NE(h0, prev);
    if (bits[b]) {
      EXPECT_EQ(h0, h1);
    } else {
      EXPECT_NE(h0, h1);
    }
    prev = h1;
  }
}

TEST(Fm0, ModulateDecodeRoundTripClean) {
  Rng rng(4);
  for (int k = 0; k < 20; ++k) {
    const Bits bits = random_bits(16, rng);
    const auto sig = fm0_modulate(bits, 40e3, 800e3);
    const auto decoded = fm0_decode(sig, 16, 40e3, 800e3);
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.bits, bits);
    EXPECT_GT(decoded.preamble_correlation, 0.99);
  }
}

TEST(Fm0, DecodeHandlesPolarityInversion) {
  const Bits bits = {true, false, false, true, true, false, true, false,
                     true, true, false, false, true, false, true, true};
  auto sig = fm0_modulate(bits, 40e3, 800e3);
  for (auto& s : sig) s = -s;
  const auto decoded = fm0_decode(sig, 16, 40e3, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_TRUE(decoded.inverted);
  EXPECT_EQ(decoded.bits, bits);
}

TEST(Fm0, DecodeFindsDelayedBurst) {
  Rng rng(5);
  const Bits bits = random_bits(16, rng);
  auto sig = fm0_modulate(bits, 40e3, 800e3);
  std::vector<double> padded(311, 0.0);
  padded.insert(padded.end(), sig.begin(), sig.end());
  padded.insert(padded.end(), 200, 0.0);
  const auto decoded = fm0_decode(padded, 16, 40e3, 800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.preamble_offset, 311u);
  EXPECT_EQ(decoded.bits, bits);
}

TEST(Fm0, CorrelationThresholdGatesNoise) {
  Rng rng(6);
  std::vector<double> noise(4000);
  for (auto& v : noise) v = rng.normal();
  const auto decoded = fm0_decode(noise, 16, 40e3, 800e3, 0.8);
  EXPECT_FALSE(decoded.valid);
  EXPECT_LT(decoded.preamble_correlation, 0.8);
}

// Property sweep: FM0 decoding vs AWGN. High SNR must decode; the 0.8
// correlation gate must reject heavy noise.
class Fm0Noise : public ::testing::TestWithParam<double> {};

TEST_P(Fm0Noise, DecodesAboveGateSnr) {
  const double snr_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(snr_db * 10 + 1000));
  const Bits bits = random_bits(16, rng);
  auto sig = fm0_modulate(bits, 40e3, 800e3);
  const double sigma = std::pow(10.0, -snr_db / 20.0);
  for (auto& s : sig) s += rng.normal(0.0, sigma);
  const auto decoded = fm0_decode(sig, 16, 40e3, 800e3);
  if (snr_db >= 10.0) {
    EXPECT_TRUE(decoded.valid) << "snr " << snr_db;
    EXPECT_EQ(decoded.bits, bits);
  }
  // At very low SNR the correlation gate must hold the line.
  if (snr_db <= -10.0) {
    EXPECT_FALSE(decoded.valid) << "snr " << snr_db;
  }
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, Fm0Noise,
                         ::testing::Values(-15.0, -10.0, 10.0, 15.0, 25.0));

TEST(Commands, QueryRoundTrip) {
  QueryCommand q;
  q.q = 5;
  q.session = Session::kS2;
  q.trext = true;
  const auto bits = q.encode();
  EXPECT_EQ(bits.size(), 22u);
  const auto parsed = QueryCommand::parse(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->q, 5);
  EXPECT_EQ(parsed->session, Session::kS2);
  EXPECT_TRUE(parsed->trext);
}

TEST(Commands, QueryRejectsBadCrc) {
  auto bits = QueryCommand{}.encode();
  bits[10] = !bits[10];
  EXPECT_FALSE(QueryCommand::parse(bits).has_value());
}

TEST(Commands, AckRoundTrip) {
  const AckCommand ack{.rn16 = 0xBEEF};
  const auto bits = ack.encode();
  EXPECT_EQ(bits.size(), 18u);
  const auto parsed = AckCommand::parse(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rn16, 0xBEEF);
}

TEST(Commands, QueryRepRoundTrip) {
  const QueryRepCommand rep{.session = Session::kS3};
  const auto parsed = QueryRepCommand::parse(rep.encode());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->session, Session::kS3);
}

TEST(Commands, SelectRoundTrip) {
  SelectCommand sel;
  sel.pointer = 32;
  sel.mask = {true, false, true, true, false, false, true, true};
  const auto bits = sel.encode();
  const auto parsed = SelectCommand::parse(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pointer, 32);
  EXPECT_EQ(parsed->mask, sel.mask);
}

TEST(Commands, Classify) {
  EXPECT_EQ(classify(QueryCommand{}.encode()), CommandKind::kQuery);
  EXPECT_EQ(classify(AckCommand{}.encode()), CommandKind::kAck);
  EXPECT_EQ(classify(QueryRepCommand{}.encode()), CommandKind::kQueryRep);
  EXPECT_EQ(classify(SelectCommand{}.encode()), CommandKind::kSelect);
}

TEST(TagSm, FullInventoryExchange) {
  Bits epc;
  append_bits(epc, 0xDEADBEEF, 32);
  append_bits(epc, 0xCAFEF00D, 32);
  append_bits(epc, 0x12345678, 32);
  TagStateMachine tag(epc, 7);
  EXPECT_EQ(tag.state(), TagState::kOff);

  // Commands before power-up are ignored.
  EXPECT_FALSE(tag.on_command(QueryCommand{}.encode()).has_value());

  tag.power_up();
  EXPECT_EQ(tag.state(), TagState::kReady);

  // Q=0 -> slot 0 -> immediate RN16.
  const auto rn16_reply = tag.on_command(QueryCommand{.q = 0}.encode());
  ASSERT_TRUE(rn16_reply.has_value());
  EXPECT_EQ(rn16_reply->size(), 16u);
  EXPECT_EQ(tag.state(), TagState::kReply);

  // ACK with the right RN16 -> EPC frame (PC + EPC + CRC16).
  const auto epc_reply =
      tag.on_command(AckCommand{.rn16 = tag.last_rn16()}.encode());
  ASSERT_TRUE(epc_reply.has_value());
  EXPECT_EQ(tag.state(), TagState::kAcknowledged);
  EXPECT_EQ(epc_reply->size(), 16u + 96u + 16u);
  EXPECT_TRUE(check_crc16(*epc_reply));
}

TEST(TagSm, WrongRn16SendsTagBackToArbitrate) {
  Rng rng(8);
  TagStateMachine tag(random_bits(96, rng), 9);
  tag.power_up();
  tag.on_command(QueryCommand{.q = 0}.encode());
  const auto wrong = static_cast<std::uint16_t>(tag.last_rn16() ^ 0x1);
  EXPECT_FALSE(tag.on_command(AckCommand{.rn16 = wrong}.encode()).has_value());
  EXPECT_EQ(tag.state(), TagState::kArbitrate);
}

TEST(TagSm, SlottingWithQueryRep) {
  // With Q=4 a tag usually draws a nonzero slot and counts down via
  // QueryRep until it replies.
  Bits epc = {true, false, true};
  TagStateMachine tag(epc, 12345);
  tag.power_up();
  auto reply = tag.on_command(QueryCommand{.q = 4}.encode());
  int reps = 0;
  while (!reply.has_value() && reps < 20) {
    reply = tag.on_command(QueryRepCommand{}.encode());
    ++reps;
  }
  EXPECT_TRUE(reply.has_value());
  EXPECT_LE(reps, 16);
}

TEST(TagSm, PowerLossResetsEverything) {
  TagStateMachine tag({true, false}, 3);
  tag.power_up();
  tag.on_command(QueryCommand{.q = 0}.encode());
  tag.power_loss();
  EXPECT_EQ(tag.state(), TagState::kOff);
  EXPECT_EQ(tag.last_rn16(), 0);
}

TEST(TagSm, SelectGatesQuery) {
  Bits epc;
  append_bits(epc, 0xAAAA5555, 32);
  append_bits(epc, 0x0, 32);
  append_bits(epc, 0x0, 32);
  TagStateMachine tag(epc, 21);
  tag.power_up();

  // Select with a mask matching the EPC start asserts SL.
  SelectCommand sel;
  sel.pointer = 0;
  sel.mask = {true, false, true, false};  // 0xA...
  tag.on_command(sel.encode());
  EXPECT_TRUE(tag.selected());

  // Query with sel=3 (SL asserted) gets a reply.
  const auto reply = tag.on_command(QueryCommand{.sel = 3, .q = 0}.encode());
  EXPECT_TRUE(reply.has_value());

  // Non-matching select deasserts SL; sel=3 query now ignored.
  sel.mask = {false, false, false, false};
  tag.on_command(sel.encode());
  EXPECT_FALSE(tag.selected());
  EXPECT_FALSE(
      tag.on_command(QueryCommand{.sel = 3, .q = 0}.encode()).has_value());
}

TEST(TagSm, Rn16FrameAndEpcFrame) {
  EXPECT_EQ(TagStateMachine::rn16_frame(0xFFFF).size(), 16u);
  Rng rng(77);
  Bits epc = random_bits(96, rng);
  TagStateMachine tag(epc, 5);
  const auto frame = tag.epc_frame();
  // PC(16) + EPC(96) + CRC16(16).
  ASSERT_EQ(frame.size(), 128u);
  EXPECT_TRUE(check_crc16(frame));
  // EPC payload embedded verbatim.
  for (std::size_t i = 0; i < 96; ++i) EXPECT_EQ(frame[16 + i], epc[i]);
}

}  // namespace
}  // namespace ivnet::gen2
