// Tests for ivnet/harvester: diode threshold physics (Sec. 2.1), Eq. 1,
// the quasi-static rail model, and the carrier-rate doubler of Fig. 1 —
// including the cross-validation between the two simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ivnet/common/units.hpp"
#include "ivnet/harvester/diode.hpp"
#include "ivnet/harvester/energy.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/harvester/rectifier.hpp"
#include "ivnet/harvester/transient.hpp"

namespace ivnet {
namespace {

TEST(Diode, IdealConductsAboveZero) {
  const auto d = Diode::ideal();
  EXPECT_DOUBLE_EQ(d.turn_on_voltage(), 0.0);
  EXPECT_GT(d.current(0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.current(-0.1), 0.0);
}

TEST(Diode, ThresholdBlocksBelowVth) {
  const auto d = Diode::threshold(0.3);
  EXPECT_DOUBLE_EQ(d.turn_on_voltage(), 0.3);
  EXPECT_DOUBLE_EQ(d.current(0.25), 0.0);
  EXPECT_GT(d.current(0.35), 0.0);
  EXPECT_FALSE(d.conducting(0.3));
  EXPECT_TRUE(d.conducting(0.31));
}

TEST(Diode, ShockleyExponential) {
  const auto d = Diode::shockley(1e-9);
  // Current should grow ~10x per 60 mV (decade/2.3nVT).
  const double i1 = d.current(0.2);
  const double i2 = d.current(0.26);
  EXPECT_NEAR(i2 / i1, 10.0, 1.5);
  EXPECT_GT(d.turn_on_voltage(), 0.15);
  EXPECT_LT(d.turn_on_voltage(), 0.4);
}

TEST(Diode, ConductionAngleFormula) {
  // vs = 2*vth -> omega = 2*acos(0.5) = 2*pi/3.
  EXPECT_NEAR(conduction_angle(0.6, 0.3), 2.0 * kPi / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(conduction_angle(0.2, 0.3), 0.0);
  EXPECT_NEAR(conduction_angle(1000.0, 0.3), kPi, 0.05);
  // duty = omega / (2*pi) = (2*pi/3) / (2*pi) = 1/3.
  EXPECT_NEAR(conduction_duty(0.6, 0.3), 1.0 / 3.0, 1e-12);
}

TEST(Diode, ConductionAngleMonotoneInAmplitude) {
  double prev = 0.0;
  for (double vs = 0.31; vs < 3.0; vs += 0.1) {
    const double omega = conduction_angle(vs, 0.3);
    EXPECT_GT(omega, prev);
    prev = omega;
  }
}

TEST(Rectifier, Equation1) {
  // Eq. 1: V_DC = N * (Vs - Vth).
  const Rectifier rect(4, Diode::threshold(0.3));
  EXPECT_NEAR(rect.open_circuit_vdc(1.0), 4.0 * 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(rect.open_circuit_vdc(0.3), 0.0);
  EXPECT_DOUBLE_EQ(rect.open_circuit_vdc(0.1), 0.0);
}

TEST(Rectifier, MoreStagesMoreVoltage) {
  const Rectifier r2(2, Diode::threshold(0.3));
  const Rectifier r6(6, Diode::threshold(0.3));
  EXPECT_NEAR(r6.open_circuit_vdc(1.0) / r2.open_circuit_vdc(1.0), 3.0, 1e-12);
}

TEST(Rectifier, EfficiencyCollapsesNearThreshold) {
  const Rectifier rect(4, Diode::threshold(0.3));
  EXPECT_DOUBLE_EQ(rect.efficiency(0.3), 0.0);
  EXPECT_LT(rect.efficiency(0.35), 0.05);
  EXPECT_GT(rect.efficiency(3.0), 0.8);
  // Monotone in input amplitude.
  double prev = 0.0;
  for (double vs = 0.31; vs < 5.0; vs += 0.2) {
    EXPECT_GE(rect.efficiency(vs), prev);
    prev = rect.efficiency(vs);
  }
}

TEST(Rectifier, DcPowerPeaksWithMatchedLoad) {
  const Rectifier rect(4, Diode::threshold(0.3));
  const double p_low = rect.dc_power(2.0, 100.0);
  const double p_match = rect.dc_power(2.0, 4.0 * 500.0);
  const double p_high = rect.dc_power(2.0, 200e3);
  EXPECT_GT(p_match, p_low);
  EXPECT_GT(p_match, p_high);
}

TEST(Harvester, SteadyStateMatchesDividerModel) {
  HarvesterConfig cfg;
  cfg.clamp_voltage_v = 100.0;  // out of the way
  const Harvester h(cfg);
  const std::vector<double> env(20000, 1.5);
  const auto r = h.run(env, 100e3);
  const double r_src = cfg.stages * cfg.source_ohm;
  const double expect = cfg.stages * (1.5 - cfg.vth_v) * cfg.load_ohm /
                        (cfg.load_ohm + r_src);
  EXPECT_NEAR(r.vdc.back(), expect, 0.01 * expect);
}

TEST(Harvester, NothingBelowThreshold) {
  const Harvester h(HarvesterConfig{});
  const std::vector<double> env(10000, 0.25);  // below vth = 0.3
  const auto r = h.run(env, 100e3);
  EXPECT_DOUBLE_EQ(r.peak_vdc, 0.0);
  EXPECT_DOUBLE_EQ(r.conduction_fraction, 0.0);
  EXPECT_EQ(r.first_power_up_s, -1.0);
}

TEST(Harvester, SampleRateIndependence) {
  // The exact two-regime integrator must give the same trajectory whether
  // the (piecewise-constant) envelope is sampled at 10 kHz or 1 MHz.
  const Harvester h(HarvesterConfig{});
  auto make_env = [](double fs) {
    // 1 ms on at 1.2 V, 4 ms off, repeated 4 times.
    std::vector<double> env;
    for (int rep = 0; rep < 4; ++rep) {
      env.insert(env.end(), static_cast<std::size_t>(1e-3 * fs), 1.2);
      env.insert(env.end(), static_cast<std::size_t>(4e-3 * fs), 0.0);
    }
    return env;
  };
  const auto slow = h.run(make_env(10e3), 10e3);
  const auto fast = h.run(make_env(1e6), 1e6);
  EXPECT_NEAR(slow.peak_vdc, fast.peak_vdc, 0.02 * fast.peak_vdc);
  EXPECT_NEAR(slow.vdc.back(), fast.vdc.back(), 0.05 * fast.peak_vdc + 1e-6);
}

TEST(Harvester, ClampLimitsRail) {
  HarvesterConfig cfg;
  cfg.clamp_voltage_v = 3.3;
  const Harvester h(cfg);
  const std::vector<double> env(20000, 10.0);
  const auto r = h.run(env, 100e3);
  EXPECT_LE(r.peak_vdc, 3.3 + 1e-12);
  EXPECT_NEAR(r.peak_vdc, 3.3, 1e-6);
}

TEST(Harvester, PowerUpTimeRecorded) {
  const Harvester h(HarvesterConfig{});
  const std::vector<double> env(50000, 1.0);
  const auto r = h.run(env, 100e3);
  EXPECT_GE(r.first_power_up_s, 0.0);
  EXPECT_GT(r.powered_fraction, 0.5);
}

TEST(Harvester, MinSteadyAmplitudeConsistent) {
  const Harvester h(HarvesterConfig{});
  const double v_min = h.min_steady_amplitude();
  EXPECT_TRUE(h.can_power_up_steady(v_min * 1.001));
  EXPECT_FALSE(h.can_power_up_steady(v_min * 0.999));
  // Simulation agrees with the analytic threshold.
  const std::vector<double> env_hi(40000, v_min * 1.05);
  const std::vector<double> env_lo(40000, v_min * 0.95);
  EXPECT_GE(h.run(env_hi, 100e3).peak_vdc, h.config().operate_voltage_v);
  EXPECT_LT(h.run(env_lo, 100e3).peak_vdc, h.config().operate_voltage_v);
}

TEST(Transient, IdealDoublerReachesTwiceAmplitude) {
  DoublerConfig cfg;
  cfg.diode = Diode::ideal();
  const auto r = simulate_doubler(cfg, 1.0, 915e6, 400);
  EXPECT_NEAR(r.final_v_out, 2.0, 0.1);
}

TEST(Transient, ThresholdDoublerReachesTwoVsMinusVth) {
  DoublerConfig cfg;
  cfg.diode = Diode::threshold(0.3);
  const auto r = simulate_doubler(cfg, 1.0, 915e6, 400);
  // Sec. 2.1.1: 2 * (Vs - Vth) = 1.4 V.
  EXPECT_NEAR(r.final_v_out, 1.4, 0.15);
}

TEST(Transient, BelowThresholdHarvestsNothing) {
  DoublerConfig cfg;
  cfg.diode = Diode::threshold(0.3);
  const auto r = simulate_doubler(cfg, 0.25, 915e6, 200);
  EXPECT_LT(r.final_v_out, 0.02);
}

TEST(Transient, ConductionFractionShrinksWithDepthLikeFig4) {
  // Fig. 4: the conduction angle shrinks as the amplitude approaches the
  // threshold and vanishes below it.
  DoublerConfig cfg;
  cfg.diode = Diode::threshold(0.3);
  const auto near_tx = simulate_doubler(cfg, 2.0, 915e6, 50);
  const auto shallow = simulate_doubler(cfg, 0.6, 915e6, 50);
  const auto deep = simulate_doubler(cfg, 0.2, 915e6, 50);
  EXPECT_GT(near_tx.conduction_fraction, shallow.conduction_fraction);
  EXPECT_GT(shallow.conduction_fraction, 0.0);
  EXPECT_DOUBLE_EQ(deep.conduction_fraction, 0.0);
}

TEST(Transient, SteadyConductionMatchesAnalyticAngle) {
  // In steady state the diodes conduct only near the waveform extremes; the
  // simulated conduction fraction should be within a factor-2 band of the
  // analytic small-ripple estimate.
  DoublerConfig cfg;
  cfg.diode = Diode::threshold(0.3);
  cfg.load_ohm = 50e3;  // meaningful ripple so conduction persists
  const auto r = simulate_doubler(cfg, 1.0, 915e6, 600, 128);
  EXPECT_GT(r.conduction_fraction, 0.005);
  EXPECT_LT(r.conduction_fraction, 0.5);
}

TEST(Energy, AccumulatorCompletesTasks) {
  EnergyAccumulator acc(1e-6);
  EXPECT_EQ(acc.step(1e-6, 0.5), 0);  // 0.5 uJ stored
  EXPECT_EQ(acc.step(1e-6, 0.6), 1);  // crosses 1 uJ
  EXPECT_EQ(acc.completed_tasks(), 1);
}

TEST(Energy, LeakagePreventsProgress) {
  EnergyAccumulator acc(1e-6, /*leakage_w=*/2e-6);
  EXPECT_EQ(acc.step(1e-6, 10.0), 0);
  EXPECT_DOUBLE_EQ(acc.stored_j(), 0.0);
  EXPECT_EQ(acc.time_to_first_task(1e-6), -1.0);
  EXPECT_GT(acc.time_to_first_task(3e-6), 0.0);
}

TEST(Energy, SteadyDutyCycleBounds) {
  EnergyAccumulator acc(1e-6);
  EXPECT_DOUBLE_EQ(acc.steady_duty_cycle(0.0), 0.0);
  EXPECT_LE(acc.steady_duty_cycle(1.0), 1.0);
  EXPECT_GT(acc.steady_duty_cycle(1e-5), acc.steady_duty_cycle(1e-6));
}

// Property sweep: quasi-static rail tracks Eq. 1 across amplitudes.
class RailTracksEq1 : public ::testing::TestWithParam<double> {};

TEST_P(RailTracksEq1, SteadyRailNearDividerTarget) {
  const double vs = GetParam();
  HarvesterConfig cfg;
  cfg.clamp_voltage_v = 1e9;
  const Harvester h(cfg);
  const std::vector<double> env(30000, vs);
  const auto r = h.run(env, 100e3);
  const double r_src = cfg.stages * cfg.source_ohm;
  const double divider = cfg.load_ohm / (cfg.load_ohm + r_src);
  const double expect =
      cfg.stages * std::max(0.0, vs - cfg.vth_v) * divider;
  EXPECT_NEAR(r.vdc.back(), expect, 0.01 * expect + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, RailTracksEq1,
                         ::testing::Values(0.2, 0.35, 0.5, 0.8, 1.2, 2.0, 4.0));

}  // namespace
}  // namespace ivnet
