// Tests for ivnet/cib/hopping: the Sec. 3.7 adaptive center-frequency
// extension against frequency-selective fading.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/cib/hopping.hpp"
#include "ivnet/cib/frequency_plan.hpp"

namespace ivnet {
namespace {

TEST(Hopper, StartsOnFirstBand) {
  const FrequencyHopper hopper{HopperConfig{}};
  EXPECT_EQ(hopper.current_band(), 0u);
  EXPECT_DOUBLE_EQ(hopper.current_center_hz(), 903e6);
  EXPECT_EQ(hopper.hops(), 0u);
}

TEST(Hopper, StaysOnGoodBand) {
  HopperConfig cfg;
  cfg.candidate_centers_hz = {903e6, 915e6};
  FrequencyHopper hopper(cfg);
  // Strong readings: no reason to leave (the other band is optimistic but
  // the current one is not below hop_ratio of anything measured).
  hopper.report(10.0);
  EXPECT_EQ(hopper.current_band(), 1u);  // unprobed band still optimistic
  // After probing band 1 and finding it weaker, return to band 0.
  hopper.report(2.0);
  EXPECT_EQ(hopper.current_band(), 0u);
  const std::size_t band = hopper.current_band();
  for (int k = 0; k < 10; ++k) hopper.report(10.0);
  EXPECT_EQ(hopper.current_band(), band);
}

TEST(Hopper, LeavesFadedBand) {
  HopperConfig cfg;
  cfg.candidate_centers_hz = {903e6, 915e6, 927e6};
  FrequencyHopper hopper(cfg);
  hopper.report(1.0);   // band 0 is weak -> explore
  const auto after_first = hopper.current_band();
  EXPECT_NE(after_first, 0u);
  EXPECT_GE(hopper.hops(), 1u);
}

TEST(Hopper, ConvergesToBestBand) {
  HopperConfig cfg;
  cfg.candidate_centers_hz = {900e6, 910e6, 920e6};
  FrequencyHopper hopper(cfg);
  const double truth[3] = {1.0, 8.0, 3.0};
  for (int step = 0; step < 20; ++step) {
    hopper.report(truth[hopper.current_band()]);
  }
  EXPECT_EQ(hopper.current_band(), 1u);
}

TEST(Hopper, EstimatesTrackReports) {
  HopperConfig cfg;
  cfg.candidate_centers_hz = {900e6, 910e6};
  cfg.ewma_alpha = 0.5;
  FrequencyHopper hopper(cfg);
  hopper.report(4.0);
  EXPECT_NEAR(hopper.band_estimate(0), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(hopper.band_estimate(1), cfg.optimistic_init);
}

TEST(BandPeak, FlatChannelSameInEveryBand) {
  Rng rng(1);
  const std::vector<double> amps(4, 1.0);
  const auto ch = make_blind_channel(amps, rng);  // zero delay: flat
  const auto offsets = FrequencyPlan::paper_default().truncated(4).offsets_hz();
  const double b0 = band_peak_amplitude(ch, offsets, 0.0);
  const double b1 = band_peak_amplitude(ch, offsets, 12e6);
  EXPECT_NEAR(b0, b1, 0.01 * b0);
}

TEST(BandPeak, SelectiveChannelVariesAcrossBands) {
  Rng rng(2);
  const std::vector<double> amps(6, 1.0);
  const auto offsets = FrequencyPlan::paper_default().truncated(6).offsets_hz();
  bool varied = false;
  for (int draw = 0; draw < 10 && !varied; ++draw) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    const double b0 = band_peak_amplitude(ch, offsets, 0.0);
    const double b1 = band_peak_amplitude(ch, offsets, 12e6);
    varied = std::abs(b0 - b1) > 0.15 * std::max(b0, b1);
  }
  EXPECT_TRUE(varied);
}

TEST(BandPeak, HoppingRecoversFromNotchedBand) {
  // End-to-end: a frequency-selective channel leaves some bands notched;
  // the hopper should end on a band delivering at least the median peak.
  Rng rng(3);
  const std::vector<double> amps(8, 1.0);
  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  HopperConfig cfg;
  cfg.candidate_centers_hz = {903e6, 909e6, 915e6, 921e6, 927e6};

  int improved = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    std::vector<double> peaks(cfg.candidate_centers_hz.size());
    for (std::size_t b = 0; b < peaks.size(); ++b) {
      peaks[b] = band_peak_amplitude(
          ch, offsets, cfg.candidate_centers_hz[b] - 915e6);
    }
    FrequencyHopper hopper(cfg);
    for (int step = 0; step < 15; ++step) {
      hopper.report(peaks[hopper.current_band()]);
    }
    const double best = *std::max_element(peaks.begin(), peaks.end());
    // The hopper tolerates bands within hop_ratio of the best; require it
    // to end somewhere in that acceptable region.
    if (peaks[hopper.current_band()] >= 0.65 * best) ++improved;
  }
  EXPECT_GE(improved, trials * 8 / 10);
}

}  // namespace
}  // namespace ivnet
