// The end-to-end impaired-session test matrix: media x SNR x antenna count
// x impairment set, run deterministically through the parallel engine.
// This is the PR's primary proof: success degrades monotonically with SNR,
// the clean corner is near-perfect, antennas and retries buy back sessions,
// and everything is reproducible bit-for-bit.
#include <gtest/gtest.h>

#include <map>

#include "ivnet/common/parallel.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"

namespace ivnet {
namespace {

// Representative one-way media losses (dB at the session's depth): tissue
// columns from benign (water tank) to hostile (gastric).
const std::vector<MatrixMedium> kMedia = {
    {"water", 2.0}, {"muscle", 6.0}, {"gastric", 9.0}};
const std::vector<double> kSnrDb = {30.0, 20.0, 10.0, 0.0};
const std::vector<std::size_t> kAntennas = {1, 3, 10};

MatrixConfig matrix_config() {
  MatrixConfig config;
  config.media = kMedia;
  config.snr_points_db = kSnrDb;
  config.antenna_counts = kAntennas;
  config.trials_per_cell = 24;
  config.link.recovery = RecoveryPolicy::retries(2);
  return config;
}

TEST(ImpairMatrix, FullMatrixShapeAndCleanCorner) {
  Rng rng(2024);
  const auto cells = run_session_matrix(matrix_config(), rng);
  ASSERT_EQ(cells.size(), kMedia.size() * kSnrDb.size() * kAntennas.size());

  for (const auto& cell : cells) {
    EXPECT_EQ(cell.trials, 24u);
    EXPECT_GE(cell.success_rate, 0.0);
    EXPECT_LE(cell.success_rate, 1.0);
  }

  // Clean corner: best medium, highest SNR, most antennas — >= 99%.
  const auto& best = *std::find_if(cells.begin(), cells.end(), [](auto& c) {
    return c.medium == "water" && c.snr_db == 30.0 && c.num_antennas == 10;
  });
  EXPECT_GE(best.success_rate, 0.99);
}

TEST(ImpairMatrix, SuccessNonIncreasingAsSnrDrops) {
  // Common random numbers across cells make the per-(medium, antennas)
  // success curve monotone in SNR in a single deterministic run.
  Rng rng(2024);
  const auto cells = run_session_matrix(matrix_config(), rng);
  std::map<std::pair<std::string, std::size_t>, std::vector<double>> curves;
  for (const auto& cell : cells) {
    curves[{cell.medium, cell.num_antennas}].push_back(cell.success_rate);
  }
  ASSERT_EQ(curves.size(), kMedia.size() * kAntennas.size());
  for (const auto& [key, curve] : curves) {
    ASSERT_EQ(curve.size(), kSnrDb.size());
    for (std::size_t i = 1; i < curve.size(); ++i) {
      // snr_points_db is descending, so success must be non-increasing.
      EXPECT_LE(curve[i], curve[i - 1])
          << key.first << " x" << key.second << " at " << kSnrDb[i] << " dB";
    }
  }
}

TEST(ImpairMatrix, MoreAntennasNeverHurt) {
  Rng rng(2024);
  const auto cells = run_session_matrix(matrix_config(), rng);
  std::map<std::pair<std::string, double>, std::vector<double>> curves;
  for (const auto& cell : cells) {
    curves[{cell.medium, cell.snr_db}].push_back(cell.success_rate);
  }
  for (const auto& [key, curve] : curves) {
    ASSERT_EQ(curve.size(), kAntennas.size());  // ordered 1, 3, 10
    for (std::size_t i = 1; i < curve.size(); ++i) {
      EXPECT_GE(curve[i], curve[i - 1])
          << key.first << " at " << key.second << " dB";
    }
  }
}

TEST(ImpairMatrix, RetriesRecoverBurstLossesUnderIdenticalSeeds) {
  // On a bursty channel, a retry-free reader loses sessions that the
  // recovering reader completes — trial for trial, same rng streams.
  ImpairedLinkConfig base;
  base.snr_db = 30.0;
  base.impair.bursts = {.rate_hz = 150.0, .mean_duration_s = 5e-4,
                        .depth_db = 40.0};
  const std::size_t trials = 40;

  std::size_t plain_ok = 0, recovering_ok = 0, recovered = 0, regressed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng plain_rng = Rng::stream(77, t);
    Rng recovering_rng = Rng::stream(77, t);
    ImpairedLinkConfig plain = base;  // max_attempts = 1
    ImpairedLinkConfig recovering = base;
    recovering.recovery = RecoveryPolicy::retries(3);
    const auto p = run_impaired_link_session(plain, plain_rng);
    const auto r = run_impaired_link_session(recovering, recovering_rng);
    plain_ok += p.success;
    recovering_ok += r.success;
    recovered += (!p.success && r.success);
    regressed += (p.success && !r.success);
    if (r.success && r.recovery.retries > 0) {
      EXPECT_GT(r.recovery.backoff_total_s, 0.0);
    }
  }
  EXPECT_LT(plain_ok, trials);        // the bursts really bite
  EXPECT_GT(recovered, 0u);           // and retries really recover sessions
  EXPECT_EQ(regressed, 0u);           // first attempts share the rng stream
  EXPECT_GT(recovering_ok, plain_ok);
}

TEST(ImpairMatrix, ImpairmentSetsOnlyDegrade) {
  // Adding impairments at fixed SNR never improves the success rate:
  // compare the clean set against CFO+drift and against bursts.
  const std::size_t trials = 24;
  auto success_with = [&](const ImpairmentConfig& impair) {
    std::size_t ok = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      ImpairedLinkConfig config;
      config.snr_db = 12.0;
      config.impair = impair;
      Rng rng = Rng::stream(31, t);
      ok += run_impaired_link_session(config, rng).success;
    }
    return ok;
  };
  const auto clean = success_with(ImpairmentConfig{});
  ImpairmentConfig rf;
  rf.cfo_hz = 300.0;
  rf.phase_noise_linewidth_hz = 50.0;
  rf.clock_drift_ppm = 30.0;
  ImpairmentConfig bursty;
  bursty.bursts = {.rate_hz = 400.0, .mean_duration_s = 5e-4,
                   .depth_db = 40.0};
  EXPECT_GE(clean, success_with(rf));
  EXPECT_GE(clean, success_with(bursty));
  EXPECT_EQ(clean, trials);  // 12 dB uplink is above the decoder cliff
}

TEST(ImpairMatrix, WaterfallMonotoneAndJsonStable) {
  WaterfallConfig config;
  config.snr_points_db = {30.0, 18.0, 8.0, -2.0};
  config.trials_per_point = 32;
  Rng rng(5150);
  const auto points = run_ber_waterfall(config, rng);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].session_success_rate,
              points[i - 1].session_success_rate);
    EXPECT_GE(points[i].ber, points[i - 1].ber);
  }
  EXPECT_GE(points.front().session_success_rate, 0.99);
  EXPECT_LE(points.back().session_success_rate, 0.1);

  // Byte-identical JSON for a byte-identical rerun.
  Rng rng2(5150);
  EXPECT_EQ(waterfall_json(points),
            waterfall_json(run_ber_waterfall(config, rng2)));
}

TEST(ImpairMatrix, DepthCurveDecays) {
  DepthSweepConfig config;
  config.depths_m = {0.01, 0.04, 0.08, 0.12};
  config.trials_per_point = 16;
  config.link.num_antennas = 10;
  config.link.recovery = RecoveryPolicy::retries(1);
  Rng rng(808);
  const auto curve = run_success_vs_depth(config, rng);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].medium_loss_db, curve[i - 1].medium_loss_db);
    EXPECT_LE(curve[i].success_rate, curve[i - 1].success_rate);
  }
  EXPECT_GE(curve.front().success_rate, 0.99);
}

}  // namespace
}  // namespace ivnet
