// Unit tests for the impairment-injection layer (ivnet/impair): each
// primitive alone, the composed chain, the brownout gate, the recovery
// policy, and the impaired link session's determinism contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ivnet/common/units.hpp"
#include "ivnet/impair/impairment.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"

namespace ivnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> sine(std::size_t n, double cycles_per_sample) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(kTwoPi * cycles_per_sample * static_cast<double>(i));
  }
  return x;
}

TEST(Awgn, HitsRequestedSnr) {
  auto x = sine(20000, 0.05);
  const double signal_power = signal_mean_power(x);
  auto noisy = x;
  Rng rng(1);
  apply_awgn(noisy, 10.0, rng);
  double noise_power = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    noise_power += (noisy[i] - x[i]) * (noisy[i] - x[i]);
  }
  noise_power /= static_cast<double>(x.size());
  const double measured_snr_db = 10.0 * std::log10(signal_power / noise_power);
  EXPECT_NEAR(measured_snr_db, 10.0, 0.5);
}

TEST(Awgn, InfiniteSnrIsNoOp) {
  auto x = sine(256, 0.1);
  const auto clean = x;
  Rng rng(2);
  apply_awgn(x, kInf, rng);
  EXPECT_EQ(x, clean);
}

TEST(Awgn, AllZeroInputStaysZero) {
  std::vector<double> x(64, 0.0);
  Rng rng(3);
  apply_awgn(x, 10.0, rng);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

TEST(CarrierOffset, ZeroOffsetIsNoOp) {
  auto x = sine(128, 0.07);
  const auto clean = x;
  apply_carrier_offset(x, 1e6, 0.0, 0.0);
  EXPECT_EQ(x, clean);
}

TEST(CarrierOffset, BeatsSignalDown) {
  // A DC stream through a CFO beat becomes the beat tone itself.
  std::vector<double> x(1000, 1.0);
  apply_carrier_offset(x, 1e6, 1e3, 0.0);
  EXPECT_NEAR(x[0], 1.0, 1e-12);           // cos(0)
  EXPECT_NEAR(x[250], 0.0, 1e-2);          // quarter beat period
  EXPECT_NEAR(x[500], -1.0, 1e-2);         // half beat period
}

TEST(PhaseNoise, ZeroLinewidthIsNoOp) {
  auto x = sine(128, 0.07);
  const auto clean = x;
  Rng rng(4);
  apply_phase_noise(x, 1e6, 0.0, rng);
  EXPECT_EQ(x, clean);
}

TEST(PhaseNoise, DecorrelatesWithLinewidth) {
  // Wider linewidth must destroy more correlation against the clean signal.
  const auto clean = sine(8000, 0.05);
  auto corr_at = [&](double linewidth) {
    auto x = clean;
    Rng rng(5);
    apply_phase_noise(x, 1e6, linewidth, rng);
    double dot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) dot += x[i] * clean[i];
    return dot / static_cast<double>(x.size());
  };
  EXPECT_GT(corr_at(10.0), corr_at(10e3));
}

TEST(ClockDrift, ZeroDriftReturnsInput) {
  const auto x = sine(512, 0.03);
  EXPECT_EQ(apply_clock_drift(x, 0.0), x);
}

TEST(ClockDrift, DriftShiftsContentButKeepsLength) {
  const auto x = sine(100000, 0.01);
  const auto fast = apply_clock_drift(x, 100.0);   // +100 ppm
  const auto slow = apply_clock_drift(x, -100.0);  // -100 ppm
  // The record length is the receiver's; only the content stretches.
  EXPECT_EQ(fast.size(), x.size());
  EXPECT_EQ(slow.size(), x.size());
  // 100 ppm shifts the read position by 9 samples at i = 90000: the fast
  // clock reads x[i * 1.0001], the slow one x[i * 0.9999] — both integral
  // grid points there, so the interpolation is (near-)exact.
  EXPECT_NEAR(fast[90000], x[90000 + 9], 1e-6);
  EXPECT_NEAR(slow[90000], x[90000 - 9], 1e-6);
  // A fast clock runs off the end of the record and holds the last sample.
  EXPECT_DOUBLE_EQ(fast.back(), x.back());
}

TEST(Bursts, RateZeroIsNoOp) {
  auto x = sine(256, 0.1);
  const auto clean = x;
  Rng rng(6);
  std::size_t erased = 0;
  EXPECT_EQ(apply_burst_erasures(x, 1e6, BurstErasureConfig{}, rng, &erased),
            0u);
  EXPECT_EQ(x, clean);
  EXPECT_EQ(erased, 0u);
}

TEST(Bursts, AttenuatesInsideBurstsOnly) {
  std::vector<double> x(100000, 1.0);
  Rng rng(7);
  std::size_t erased = 0;
  BurstErasureConfig config{.rate_hz = 50.0, .mean_duration_s = 1e-3,
                            .depth_db = 40.0};
  const auto bursts = apply_burst_erasures(x, 1e6, config, rng, &erased);
  ASSERT_GT(bursts, 0u);
  ASSERT_GT(erased, 0u);
  std::size_t attenuated = 0;
  for (double v : x) {
    if (v < 0.5) {
      ++attenuated;
      // depth_db is a power depth: amplitude inside = 10^(-40/20/... ) etc.
      EXPECT_NEAR(v, from_db(-config.depth_db / 2.0), 1e-9);
    } else {
      EXPECT_EQ(v, 1.0);
    }
  }
  EXPECT_EQ(attenuated, erased);
}

TEST(Brownout, DisabledGateIsAllOn) {
  std::vector<double> supply(100, 0.0);
  const auto gate = brownout_gate(supply, 800e3, BrownoutConfig{});
  for (bool g : gate) EXPECT_TRUE(g);
}

TEST(Brownout, ChargesThenSagsUnderFade) {
  BrownoutConfig config;
  config.enabled = true;
  ImpairmentTrace trace;
  BrownoutState rail;
  // 2 ms of strong carrier charges the rail from cold...
  std::vector<double> charge(1600, 1.0);
  const auto g1 = brownout_gate(charge, 800e3, config, &trace, &rail);
  EXPECT_FALSE(g1.front());  // cold rail: chip starts unpowered
  EXPECT_TRUE(g1.back());
  EXPECT_TRUE(rail.on);
  EXPECT_GT(rail.doubler.vc2_v, config.recover_v);

  // ...then a 375 us fade in the middle of a reply sags it below dropout.
  std::vector<double> reply(600, 1.0);
  for (std::size_t i = 200; i < 500; ++i) reply[i] = 0.01;
  ImpairmentTrace fade_trace;
  BrownoutState reply_rail = rail;
  const auto g2 = brownout_gate(reply, 800e3, config, &fade_trace, &reply_rail);
  EXPECT_TRUE(g2.front());  // carried-over state: starts powered
  EXPECT_TRUE(fade_trace.browned_out);
  EXPECT_GT(fade_trace.brownout_samples, 0u);
  std::size_t off = 0;
  for (bool g : g2) off += !g;
  EXPECT_EQ(off, fade_trace.brownout_samples);

  // Without the fade the carried-over rail never drops.
  std::vector<double> steady(600, 1.0);
  ImpairmentTrace steady_trace;
  BrownoutState steady_rail = rail;
  const auto g3 =
      brownout_gate(steady, 800e3, config, &steady_trace, &steady_rail);
  EXPECT_FALSE(steady_trace.browned_out);
  for (bool g : g3) EXPECT_TRUE(g);
}

TEST(Brownout, ApplyZeroesGatedSamples) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  apply_brownout(x, {true, false, true, false});
  EXPECT_EQ(x, (std::vector<double>{1.0, 0.0, 3.0, 0.0}));
}

TEST(Chain, DefaultConfigIsClean) {
  const auto x = sine(512, 0.05);
  Rng rng(8);
  const ImpairmentChain chain{ImpairmentConfig{}};
  ImpairmentTrace trace;
  const auto y = chain.apply(x, 1e6, rng, &trace);
  EXPECT_EQ(y, x);
  EXPECT_EQ(trace.bursts, 0u);
  EXPECT_EQ(trace.erased_samples, 0u);
}

TEST(Chain, DeterministicForSameSeed) {
  ImpairmentConfig config;
  config.snr_db = 10.0;
  config.cfo_hz = 500.0;
  config.phase_noise_linewidth_hz = 100.0;
  config.clock_drift_ppm = 40.0;
  config.bursts = {.rate_hz = 200.0, .mean_duration_s = 1e-4,
                   .depth_db = 30.0};
  const ImpairmentChain chain(config);
  const auto x = sine(4096, 0.02);
  Rng a(99), b(99);
  EXPECT_EQ(chain.apply(x, 1e6, a), chain.apply(x, 1e6, b));
}

TEST(RecoveryPolicy, BackoffIsExponential) {
  RecoveryPolicy policy;
  policy.initial_backoff_s = 1e-3;
  policy.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(policy.backoff_for_attempt(0), 1e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_for_attempt(1), 2e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_for_attempt(3), 8e-3);
  EXPECT_EQ(RecoveryPolicy::retries(3).max_attempts, 4);
}

TEST(LinkSession, CleanChannelSucceeds) {
  ImpairedLinkConfig config;
  Rng rng(42);
  const auto report = run_impaired_link_session(config, rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.epc.size(), 96u);
  EXPECT_EQ(report.recovery.retries, 0);
  EXPECT_EQ(report.recovery.failed_stage, SessionStage::kNone);
  EXPECT_GT(report.last_correlation, 0.9);
}

TEST(LinkSession, ConsumesExactlyOneRngDraw) {
  // The documented contract: the session takes ONE draw (its stream base),
  // independent of the dialogue's outcome or length.
  for (double snr : {30.0, -5.0}) {
    ImpairedLinkConfig config;
    config.snr_db = snr;
    config.recovery = RecoveryPolicy::retries(2);
    Rng used(1234), reference(1234);
    (void)run_impaired_link_session(config, used);
    (void)reference();
    EXPECT_EQ(used(), reference()) << "snr " << snr;
  }
}

TEST(LinkSession, DeterministicForSameSeed) {
  ImpairedLinkConfig config;
  config.snr_db = 7.0;
  config.impair.bursts = {.rate_hz = 100.0, .mean_duration_s = 5e-4,
                          .depth_db = 40.0};
  config.recovery = RecoveryPolicy::retries(3);
  Rng a(5), b(5);
  const auto ra = run_impaired_link_session(config, a);
  const auto rb = run_impaired_link_session(config, b);
  EXPECT_EQ(ra.success, rb.success);
  EXPECT_EQ(ra.rn16, rb.rn16);
  EXPECT_EQ(ra.commands_sent, rb.commands_sent);
  EXPECT_EQ(ra.recovery.retries, rb.recovery.retries);
  EXPECT_EQ(ra.recovery.q_trajectory, rb.recovery.q_trajectory);
  EXPECT_DOUBLE_EQ(ra.elapsed_s, rb.elapsed_s);
}

TEST(LinkSession, ChargeFailureReportsStage) {
  ImpairedLinkConfig config;
  config.medium_loss_db = 12.0;  // amplitude 0.25 < 0.35 threshold
  Rng rng(6);
  const auto report = run_impaired_link_session(config, rng);
  EXPECT_FALSE(report.powered);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.recovery.failed_stage, SessionStage::kCharge);
}

TEST(LinkSession, AntennasRescueChargeFailure) {
  ImpairedLinkConfig config;
  config.medium_loss_db = 12.0;
  config.num_antennas = 10;  // sqrt(10) * 0.25 = 0.79 > threshold
  Rng rng(6);
  const auto report = run_impaired_link_session(config, rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.success);
}

TEST(LinkSession, MillerUplinksWork) {
  for (auto m : {gen2::Miller::kM2, gen2::Miller::kM4, gen2::Miller::kM8}) {
    ImpairedLinkConfig config;
    config.uplink = m;
    Rng rng(77);
    const auto report = run_impaired_link_session(config, rng);
    EXPECT_TRUE(report.success) << "miller " << static_cast<int>(m);
  }
}

TEST(LinkSession, StageStringsAreStable) {
  EXPECT_EQ(to_string(SessionStage::kNone), "none");
  EXPECT_EQ(to_string(SessionStage::kCharge), "charge");
  EXPECT_EQ(to_string(SessionStage::kQuery), "query");
  EXPECT_EQ(to_string(SessionStage::kAck), "ack");
  EXPECT_EQ(to_string(SessionStage::kReqRn), "req_rn");
  EXPECT_EQ(to_string(SessionStage::kRead), "read");
}

TEST(Waterfall, JsonEmittersProduceCompleteDocuments) {
  WaterfallConfig config;
  config.snr_points_db = {30.0, 0.0};
  config.trials_per_point = 4;
  Rng rng(9);
  const auto points = run_ber_waterfall(config, rng);
  ASSERT_EQ(points.size(), 2u);
  const auto json = waterfall_json(points);
  EXPECT_NE(json.find("\"waterfall\""), std::string::npos);
  EXPECT_NE(json.find("\"session_success_rate\""), std::string::npos);

  DepthSweepConfig depth;
  depth.depths_m = {0.02, 0.08};
  depth.trials_per_point = 4;
  Rng rng2(10);
  const auto curve = run_success_vs_depth(depth, rng2);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_GT(curve[1].medium_loss_db, curve[0].medium_loss_db);
  EXPECT_NE(depth_sweep_json(curve).find("\"depth_sweep\""),
            std::string::npos);
}

TEST(Waterfall, LossGrowsWithDepth) {
  const auto muscle = media::muscle();
  const double shallow = medium_loss_at_depth_db(muscle, 915e6, 0.02);
  const double deep = medium_loss_at_depth_db(muscle, 915e6, 0.10);
  EXPECT_GT(deep, shallow);
  EXPECT_GT(shallow, 0.0);  // boundary loss alone is already positive
}

}  // namespace
}  // namespace ivnet
