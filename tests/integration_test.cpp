// Integration tests: the full waveform path — RadioArray transmission
// through a blind Channel into the tag's envelope detector and harvester,
// and back out through the out-of-band reader. These exercise the same code
// a real deployment would run, sample by sample, rather than the analytic
// shortcuts the experiment runners use.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/transmitter.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/reader/oob_reader.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/sim/experiment.hpp"

namespace ivnet {
namespace {

TEST(Integration, WaveformPeakMatchesAnalyticPrediction) {
  // Transmit CW from a 5-antenna CIB array through a blind channel; the
  // received waveform's peak must match the analytic cib_peak_amplitude.
  Rng rng(1);
  const auto plan = FrequencyPlan::paper_default().truncated(5);
  RadioArrayConfig cfg;
  cfg.sample_rate_hz = 20e3;  // envelope-scale is enough for CW
  cfg.drive_dbm = 0.0;        // 1 mW: unit-ish amplitudes
  CibTransmitter tx(plan, cfg, rng);

  const std::vector<double> amps(5, 1.0);
  Channel channel = make_blind_channel(amps, rng);
  // Fold the PLL phases into the channel evaluation by receiving the real
  // transmitted waveforms.
  const auto waves = tx.transmit_cw(1.0);
  const auto rx = receive(channel, waves, plan.offsets_hz());

  // Analytic peak with the COMBINED phases (channel + PLL).
  std::vector<double> combined_phases(5), tone_amps(5);
  const auto pll_phases = tx.radios().initial_phases();
  for (std::size_t i = 0; i < 5; ++i) {
    const cplx h = channel.gain(i, plan.offsets_hz()[i]);
    combined_phases[i] = std::arg(h) + pll_phases[i];
    tone_amps[i] = std::abs(h);
  }
  const double drive_amp = std::sqrt(dbm_to_watts(0.0));
  const auto env = cib_envelope(plan.offsets_hz(), combined_phases, tone_amps,
                                1.0, 20000);
  const double analytic_peak = drive_amp * max_value(env);
  EXPECT_NEAR(peak_amplitude(rx), analytic_peak, 0.02 * analytic_peak);
}

TEST(Integration, CibWaveformBeatsSameFrequencyBaselineWaveform) {
  Rng rng(2);
  const auto plan = FrequencyPlan::paper_default().truncated(8);
  RadioArrayConfig cfg;
  cfg.sample_rate_hz = 20e3;
  cfg.drive_dbm = 0.0;

  int cib_wins = 0;
  const int trials = 10;
  for (int k = 0; k < trials; ++k) {
    CibTransmitter cib_tx(plan, cfg, rng);
    CibTransmitter base_tx(
        FrequencyPlan(plan.center_hz(), std::vector<double>(8, 0.0)), cfg,
        rng);

    const std::vector<double> amps(8, 1.0);
    Channel channel = make_blind_channel(amps, rng);
    const auto cib_rx = receive(channel, cib_tx.transmit_cw(1.0),
                                plan.offsets_hz());
    const std::vector<double> zeros(8, 0.0);
    const auto base_rx =
        receive(channel, base_tx.transmit_cw(1.0), zeros);
    if (peak_amplitude(cib_rx) > peak_amplitude(base_rx)) ++cib_wins;
  }
  // Fig. 12: CIB outperforms the same-frequency baseline in >99% of trials.
  EXPECT_GE(cib_wins, 9);
}

TEST(Integration, TagDecodesCommandCarriedOverWaveformPath) {
  // Full downlink: PIE-modulated CIB waveforms -> channel -> envelope ->
  // tag. Uses a 2-antenna array so the command rides a time-varying
  // envelope, checking the flatness constraint does its job near the peak.
  Rng rng(3);
  const auto plan = FrequencyPlan::paper_default().truncated(2);
  RadioArrayConfig cfg;          // 800 kHz, 30 dBm
  CibTransmitter tx(plan, cfg, rng);

  const auto query_bits = gen2::QueryCommand{.q = 0}.encode();
  const auto waves =
      tx.transmit_command(query_bits, gen2::PieTiming{}, true);

  // A benign channel draw: aligned phases at t=0 (the command is short, so
  // the envelope stays near its peak across it).
  std::vector<std::vector<Ray>> rays;
  for (int i = 0; i < 2; ++i) {
    rays.push_back({Ray{.amplitude = 1.0, .delay_s = 0.0,
                        .phase = -tx.radios().initial_phases()[static_cast<std::size_t>(i)]}});
  }
  Channel channel((std::vector<std::vector<Ray>>(rays)));
  const auto rx = receive(channel, waves, plan.offsets_hz());

  auto env = envelope(rx);
  // Scale the physical volts to a tag-friendly level.
  const double peak = max_value(env);
  for (auto& v : env) v *= 2.0 / peak;

  TagDevice tag(standard_tag());
  const auto result = tag.receive_downlink(env, cfg.sample_rate_hz);
  EXPECT_TRUE(result.powered);
  EXPECT_TRUE(result.command_decoded);
  ASSERT_TRUE(result.reply.has_value());
  EXPECT_EQ(result.reply->size(), 16u);
}

TEST(Integration, EndToEndUplinkThroughOobReader) {
  // Tag reply -> reflection waveform -> out-of-band reader decode, with the
  // exact RN16 recovered.
  Rng rng(4);
  TagDevice tag(standard_tag());
  auto env = gen2::pie_encode(gen2::QueryCommand{.q = 0}.encode(),
                              gen2::PieTiming{}, 800e3, true);
  for (auto& v : env) v *= 2.0;
  const auto down = tag.receive_downlink(env, 800e3);
  ASSERT_TRUE(down.reply.has_value());

  const auto reflection = tag.backscatter_reflection(*down.reply, 800e3);
  const OobReader reader(OobReaderConfig{});
  const auto report =
      reader.decode(reflection, 1e-4, 1e-6, standard_tag().blf_hz,
                    down.reply->size(), rng);
  ASSERT_TRUE(report.success);
  ASSERT_EQ(report.bits.size(), 16u);
  std::uint16_t decoded_rn16 = 0;
  for (bool b : report.bits) {
    decoded_rn16 = static_cast<std::uint16_t>((decoded_rn16 << 1) | (b ? 1 : 0));
  }
  EXPECT_EQ(decoded_rn16, tag.state_machine().last_rn16());
}

TEST(Integration, FreeRunningClocksDegradeThePlan) {
  // Ablation: without the shared Octoclock reference, ppm-scale carrier
  // errors swamp the Hz-scale CIB offsets; the envelope period is destroyed
  // (peaks no longer recur at the 1 s cadence the reader expects).
  Rng rng(5);
  const auto plan = FrequencyPlan::paper_default().truncated(4);
  RadioArrayConfig good_cfg;
  RadioArrayConfig bad_cfg;
  bad_cfg.clocks = ClockDistribution::free_running();
  const CibTransmitter good(plan, good_cfg, rng);
  const CibTransmitter bad(plan, bad_cfg, rng);

  const auto good_offsets = good.radios().actual_offsets_hz();
  const auto bad_offsets = bad.radios().actual_offsets_hz();
  double good_err = 0.0, bad_err = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    good_err += std::abs(good_offsets[i] - plan.offsets_hz()[i]);
    bad_err += std::abs(bad_offsets[i] - plan.offsets_hz()[i]);
  }
  EXPECT_LT(good_err, 1e-6);
  EXPECT_GT(bad_err, 400.0);
}

TEST(Integration, OrientationSweepKeepsGainStable) {
  // Fig. 10(b): the CIB gain is independent of sensor orientation (the
  // absolute power drops, but the ratio to a single antenna holds).
  Rng rng(6);
  const auto plan = FrequencyPlan::paper_default();
  std::vector<double> medians;
  for (double theta : {0.0, 0.5 * kPi, kPi, 1.5 * kPi}) {
    auto scen = water_tank_scenario(0.05, 0.5);
    scen.orientation_rad = theta;
    const auto trials =
        run_gain_trials(scen, standard_tag(), plan, 40, rng);
    medians.push_back(summarize_cib(trials).p50);
  }
  const double lo = *std::min_element(medians.begin(), medians.end());
  const double hi = *std::max_element(medians.begin(), medians.end());
  EXPECT_LT(hi / lo, 2.2);  // stable within trial noise
}

}  // namespace
}  // namespace ivnet
