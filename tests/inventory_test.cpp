// Tests for ivnet/reader/inventory: the Sec. 3.7 multi-sensor extension —
// slotted anti-collision rounds and Select-based sensor addressing.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "ivnet/reader/inventory.hpp"

namespace ivnet {
namespace {

using gen2::Bits;
using gen2::TagStateMachine;

Bits make_epc(std::uint32_t id) {
  Bits epc;
  gen2::append_bits(epc, 0xE2801160u, 32);
  gen2::append_bits(epc, 0x2000u, 32);
  gen2::append_bits(epc, id, 32);
  return epc;
}

std::vector<std::unique_ptr<TagStateMachine>> make_tags(std::size_t n) {
  std::vector<std::unique_ptr<TagStateMachine>> tags;
  for (std::size_t i = 0; i < n; ++i) {
    tags.push_back(std::make_unique<TagStateMachine>(
        make_epc(static_cast<std::uint32_t>(i + 1)), 1000 + i));
    tags.back()->power_up();
  }
  return tags;
}

std::vector<TagStateMachine*> raw(
    std::vector<std::unique_ptr<TagStateMachine>>& tags) {
  std::vector<TagStateMachine*> ptrs;
  for (auto& t : tags) ptrs.push_back(t.get());
  return ptrs;
}

TEST(Inventory, SingleTagImmediateRead) {
  auto tags = make_tags(1);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 0;
  Rng rng(1);
  const auto result = InventoryRound(cfg).run(ptrs, rng);
  ASSERT_EQ(result.epcs.size(), 1u);
  EXPECT_EQ(result.epcs[0], make_epc(1));
  EXPECT_EQ(result.collisions, 0u);
  EXPECT_EQ(result.crc_failures, 0u);
}

TEST(Inventory, TwoTagsWithQ0AlwaysCollide) {
  auto tags = make_tags(2);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 0;  // both tags pick slot 0
  Rng rng(2);
  const auto result = InventoryRound(cfg).run(ptrs, rng);
  EXPECT_TRUE(result.epcs.empty());
  EXPECT_GE(result.collisions, 1u);
}

TEST(Inventory, PopulationResolvedAcrossRounds) {
  auto tags = make_tags(8);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 4;  // 16 slots per round
  Rng rng(3);
  const auto result = InventoryRound(cfg).run_until_complete(ptrs, 20, rng);
  EXPECT_EQ(result.epcs.size(), 8u);
  // All eight distinct EPCs present.
  for (std::uint32_t id = 1; id <= 8; ++id) {
    EXPECT_NE(std::find(result.epcs.begin(), result.epcs.end(), make_epc(id)),
              result.epcs.end());
  }
}

TEST(Inventory, AckedTagsSitOutFollowingRounds) {
  auto tags = make_tags(3);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 3;
  Rng rng(4);
  const InventoryRound round(cfg);
  auto first = round.run(ptrs, rng);
  const std::size_t found_first = first.epcs.size();
  // Tags read in round 1 have their inventoried flag set and must not be
  // re-read in round 2.
  auto second = round.run(ptrs, rng);
  for (const auto& epc : second.epcs) {
    EXPECT_EQ(std::find(first.epcs.begin(), first.epcs.end(), epc),
              first.epcs.end());
  }
  EXPECT_LE(first.epcs.size() + second.epcs.size(), 3u);
  EXPECT_GE(found_first, 1u);
}

TEST(Inventory, SelectAddressesOneSensor) {
  // Sec. 3.7: "incorporate a select command into its query, specifying the
  // identifier of the sensor it wishes to communicate with."
  auto tags = make_tags(4);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 0;  // would collide if everyone answered
  cfg.use_select = true;
  cfg.select_pointer = 64;  // the id word of our EPC layout
  cfg.select_mask.clear();
  gen2::append_bits(cfg.select_mask, 3u, 32);  // tag id 3
  Rng rng(5);
  const auto result = InventoryRound(cfg).run(ptrs, rng);
  ASSERT_EQ(result.epcs.size(), 1u);
  EXPECT_EQ(result.epcs[0], make_epc(3));
  EXPECT_EQ(result.collisions, 0u);
}

TEST(Inventory, CaptureEffectRecoversSomeCollisions) {
  InventoryConfig no_capture;
  no_capture.q = 1;
  InventoryConfig with_capture = no_capture;
  with_capture.capture_probability = 1.0;

  std::size_t base_found = 0, capture_found = 0;
  for (int trial = 0; trial < 10; ++trial) {
    {
      auto tags = make_tags(4);
      auto ptrs = raw(tags);
      Rng rng(100 + trial);
      base_found += InventoryRound(no_capture).run(ptrs, rng).epcs.size();
    }
    {
      auto tags = make_tags(4);
      auto ptrs = raw(tags);
      Rng rng(100 + trial);
      capture_found +=
          InventoryRound(with_capture).run(ptrs, rng).epcs.size();
    }
  }
  EXPECT_GT(capture_found, base_found);
}

TEST(Inventory, UnpoweredTagsInvisible) {
  auto tags = make_tags(2);
  tags[1]->power_loss();  // second tag is below threshold
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 2;
  Rng rng(6);
  const auto result = InventoryRound(cfg).run_until_complete(ptrs, 8, rng);
  ASSERT_EQ(result.epcs.size(), 1u);
  EXPECT_EQ(result.epcs[0], make_epc(1));
}

// Property sweep: any population up to 12 tags is fully inventoried within
// a generous round budget when Q is sized reasonably.
class InventoryComplete : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InventoryComplete, AllTagsFound) {
  auto tags = make_tags(GetParam());
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 4;
  Rng rng(7777 + GetParam());
  const auto result = InventoryRound(cfg).run_until_complete(ptrs, 30, rng);
  EXPECT_EQ(result.epcs.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Populations, InventoryComplete,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 12u));

// --- Config validation regressions: out-of-range inputs are clamped, never
// --- trusted.

TEST(InventoryConfigValidation, OversizedQIsClampedTo15) {
  InventoryConfig cfg;
  cfg.q = 42;
  EXPECT_EQ(cfg.normalized().q, 15);
  // And the round itself runs on the normalized value without issue.
  auto tags = make_tags(1);
  auto ptrs = raw(tags);
  cfg.max_slots = 4;  // don't actually walk 2^15 slots
  Rng rng(11);
  const auto result = InventoryRound(cfg).run(ptrs, rng);
  EXPECT_LE(result.slots_used, 4u);
}

TEST(InventoryConfigValidation, CaptureProbabilityClampedIntoUnitRange) {
  InventoryConfig cfg;
  cfg.capture_probability = 1.7;
  EXPECT_EQ(cfg.normalized().capture_probability, 1.0);
  cfg.capture_probability = -0.3;
  EXPECT_EQ(cfg.normalized().capture_probability, 0.0);
  cfg.capture_probability = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(cfg.normalized().capture_probability, 0.0);
  cfg.capture_probability = 0.25;
  EXPECT_EQ(cfg.normalized().capture_probability, 0.25);
}

TEST(InventoryConfigValidation, NanCaptureProbabilityStillResolvesTags) {
  InventoryConfig cfg;
  cfg.q = 3;
  cfg.capture_probability = std::numeric_limits<double>::quiet_NaN();
  auto tags = make_tags(4);
  auto ptrs = raw(tags);
  Rng rng(12);
  const auto result = InventoryRound(cfg).run_until_complete(ptrs, 20, rng);
  EXPECT_EQ(result.epcs.size(), 4u);
}

TEST(InventoryConfigValidation, ZeroMaxSlotsDerivesBudgetFromQ) {
  InventoryConfig cfg;
  cfg.q = 2;
  cfg.max_slots = 0;  // derive: 2^q + population slack
  auto tags = make_tags(6);
  auto ptrs = raw(tags);
  Rng rng(13);
  const auto result = InventoryRound(cfg).run(ptrs, rng);
  EXPECT_GT(result.slots_used, 0u);
  EXPECT_LE(result.slots_used, (1u << cfg.q) + 6u);
}

// --- The Gen2 Q-algorithm: unit behavior plus the adaptive inventory loop.

TEST(AdaptiveQAlgorithm, CollisionsRaiseAndEmptiesLowerQ) {
  AdaptiveQ adapt(AdaptiveQConfig{.initial_q = 4.0, .step = 0.5});
  EXPECT_EQ(adapt.q(), 4);
  adapt.on_collision();
  EXPECT_DOUBLE_EQ(adapt.qfp(), 4.5);
  adapt.on_collision();
  EXPECT_EQ(adapt.q(), 5);
  adapt.on_single();  // clean reads leave Qfp alone
  EXPECT_DOUBLE_EQ(adapt.qfp(), 5.0);
  for (int k = 0; k < 4; ++k) adapt.on_empty();
  EXPECT_EQ(adapt.q(), 3);
}

TEST(AdaptiveQAlgorithm, QfpIsClampedAtBothEnds) {
  AdaptiveQ low(AdaptiveQConfig{.initial_q = 0.0, .step = 1.0, .q_min = 0});
  for (int k = 0; k < 5; ++k) low.on_empty();
  EXPECT_EQ(low.q(), 0);
  AdaptiveQ high(AdaptiveQConfig{.initial_q = 15.0, .step = 1.0,
                                 .q_max = 15});
  for (int k = 0; k < 5; ++k) high.on_collision();
  EXPECT_EQ(high.q(), 15);
}

TEST(AdaptiveQAlgorithm, RunAdaptiveFindsAllTagsAndRecordsTrajectory) {
  auto tags = make_tags(8);
  auto ptrs = raw(tags);
  InventoryConfig cfg;
  cfg.q = 1;  // deliberately undersized: the Q-algorithm must grow it
  Rng rng(14);
  const auto result = InventoryRound(cfg).run_adaptive(
      ptrs, 30, rng, AdaptiveQConfig{.initial_q = 1.0, .step = 0.5});
  EXPECT_EQ(result.epcs.size(), 8u);
  ASSERT_FALSE(result.q_trajectory.empty());
  EXPECT_EQ(result.q_trajectory.front(), 1);
  // The early collisions must have pushed Q above its undersized start.
  const auto peak = *std::max_element(result.q_trajectory.begin(),
                                      result.q_trajectory.end());
  EXPECT_GT(peak, 1);
}

}  // namespace
}  // namespace ivnet
