// Tests for ivnet/common/json: escaping and writer structure.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdlib>

#include "ivnet/common/json.hpp"

namespace ivnet {
namespace {

TEST(JsonEscape, PassthroughAndSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("ctl\x01") ), "ctl\\u0001");
}

TEST(JsonEscape, ShortEscapesForAllTwoCharForms) {
  // RFC 8259 two-character escapes, including backspace and form feed.
  EXPECT_EQ(json_escape("\b"), "\\b");
  EXPECT_EQ(json_escape("\f"), "\\f");
  EXPECT_EQ(json_escape("\n"), "\\n");
  EXPECT_EQ(json_escape("\r"), "\\r");
  EXPECT_EQ(json_escape("\t"), "\\t");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
}

TEST(JsonEscape, EveryControlCharEscaped) {
  // All of 0x00..0x1F must come out escaped one way or another; the result
  // must contain no raw control bytes.
  for (int c = 0; c < 0x20; ++c) {
    std::string in(1, static_cast<char>(c));
    const std::string out = json_escape(in);
    ASSERT_GE(out.size(), 2u) << "control char " << c << " not escaped";
    EXPECT_EQ(out[0], '\\') << "control char " << c;
    for (char byte : out) {
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u);
    }
  }
  // Spot-check the \uXXXX form for chars without a short escape.
  EXPECT_EQ(json_escape(std::string(1, '\x00')), "\\u0000");
  EXPECT_EQ(json_escape(std::string(1, '\x0b')), "\\u000b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, HighBytesPassThrough) {
  // UTF-8 continuation bytes (>= 0x80) are not control chars: pass through
  // so multi-byte characters survive.
  const std::string utf8 = "\xc3\xa9";  // e-acute
  EXPECT_EQ(json_escape(utf8), utf8);
}

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "ivn");
  w.field("antennas", 10);
  w.field("gain", 85.5);
  w.field("ok", true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"ivn\",\"antennas\":10,\"gain\":85.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("offsets").begin_array();
  w.value(0).value(7).value(20);
  w.end_array();
  w.key("rows").begin_array();
  w.begin_object().field("n", 1).end_object();
  w.begin_object().field("n", 2).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"offsets\":[0,7,20],\"rows\":[{\"n\":1},{\"n\":2}]}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array().value(1.5).value("x").value(false).end_array();
  EXPECT_EQ(w.str(), "[1.5,\"x\",false]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::infinity()).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, SizeTValues) {
  JsonWriter w;
  w.begin_object().field("count", std::size_t{42}).end_object();
  EXPECT_EQ(w.str(), "{\"count\":42}");
}

TEST(JsonWriter, IncompleteIsReported) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
}

// The writer formats doubles with std::to_chars (shortest round-trip), so
// the bytes are a function of the value alone — no locale, no libc printf
// quirks. These pin the corners: denormals, huge magnitudes, negative zero,
// and the fixed-vs-scientific tie rule.
TEST(JsonWriter, DoubleFormattingIsByteStableAtTheExtremes) {
  JsonWriter w;
  w.begin_array()
      .value(5e-324)  // smallest denormal
      .value(1.7976931348623157e308)  // largest finite
      .value(-0.0)
      .value(1e-5)
      .value(600000.0)  // scientific strictly shorter -> scientific
      .value(10000.0)   // tie -> fixed preferred
      .end_array();
  EXPECT_EQ(w.str(),
            "[5e-324,1.7976931348623157e+308,-0,1e-05,6e+05,10000]");
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  // Shortest-round-trip means strtod(output) == input bit-for-bit.
  const double values[] = {5e-324, 1.7976931348623157e308, -0.0, 0.1,
                           1.0 / 3.0, 2.5e-3, 6.02214076e23};
  for (const double v : values) {
    JsonWriter w;
    w.begin_array().value(v).end_array();
    const std::string doc = w.str();
    const double parsed = std::strtod(doc.c_str() + 1, nullptr);
    EXPECT_EQ(std::signbit(parsed), std::signbit(v)) << doc;
    EXPECT_EQ(parsed, v) << doc;
  }
}

TEST(JsonFindString, PullsStringsBackOutOfWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "decode");
  w.field("seed", "18446744073709551615");  // u64 max as a decimal string
  w.field("note", "line1\nline2\t\"quoted\"");
  w.end_object();
  const std::string doc = w.str();
  EXPECT_EQ(json_find_string(doc, "name", ""), "decode");
  EXPECT_EQ(json_find_string(doc, "seed", ""), "18446744073709551615");
  EXPECT_EQ(json_find_string(doc, "note", ""), "line1\nline2\t\"quoted\"");
}

TEST(JsonFindString, FallbackWhenAbsentMistypedOrUnterminated) {
  EXPECT_EQ(json_find_string("{\"a\":\"x\"}", "b", "dflt"), "dflt");
  EXPECT_EQ(json_find_string("{\"a\":42}", "a", "dflt"), "dflt");
  EXPECT_EQ(json_find_string("{\"a\":\"unterminated", "a", "dflt"), "dflt");
  EXPECT_EQ(json_find_string("", "a", "dflt"), "dflt");
  // Space between colon and the opening quote is fine.
  EXPECT_EQ(json_find_string("{\"a\":  \"ok\"}", "a", ""), "ok");
}

TEST(JsonFindNumber, PullsFieldsBackOutOfWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("p50", 85.25);
  w.field("trials", std::size_t{150});
  w.field("loss_db", -12.5);
  w.end_object();
  const std::string doc = w.str();
  EXPECT_DOUBLE_EQ(json_find_number(doc, "p50", 0.0), 85.25);
  EXPECT_DOUBLE_EQ(json_find_number(doc, "trials", 0.0), 150.0);
  EXPECT_DOUBLE_EQ(json_find_number(doc, "loss_db", 0.0), -12.5);
}

TEST(JsonFindNumber, FallbackWhenAbsentOrNotANumber) {
  EXPECT_DOUBLE_EQ(json_find_number("{\"a\":1}", "b", -7.0), -7.0);
  EXPECT_DOUBLE_EQ(json_find_number("{\"a\":\"text\"}", "a", -7.0), -7.0);
  EXPECT_DOUBLE_EQ(json_find_number("", "a", 3.5), 3.5);
  // Scientific notation and surrounding space are fine.
  EXPECT_DOUBLE_EQ(json_find_number("{\"x\": 2.5e-3}", "x", 0.0), 2.5e-3);
}

TEST(JsonFindNumber, SkipsAnyJsonWhitespaceAfterTheColon) {
  // Pretty-printed documents put tabs and newlines after the colon; all
  // four JSON whitespace bytes are legal there.
  EXPECT_DOUBLE_EQ(json_find_number("{\"x\":\t4.5}", "x", 0.0), 4.5);
  EXPECT_DOUBLE_EQ(json_find_number("{\"x\":\n  -2}", "x", 0.0), -2.0);
  EXPECT_DOUBLE_EQ(json_find_number("{\"x\":\r\n7e2}", "x", 0.0), 700.0);
  EXPECT_DOUBLE_EQ(json_find_number("{\"x\": \t", "x", 1.5), 1.5);
}

TEST(JsonFindNumber, ParsesIndependentlyOfTheProcessLocale) {
  // strtod under a comma-decimal locale reads "0.5" as 0 and journals
  // written on one machine would parse differently on another; the
  // from_chars parser must not consult the locale at all.
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const double gain = json_find_number("{\"gain\":0.5}", "gain", -1.0);
  const double sci = json_find_number("{\"ber\":2.5e-3}", "ber", -1.0);
  std::setlocale(LC_NUMERIC, "C");
  EXPECT_DOUBLE_EQ(gain, 0.5);
  EXPECT_DOUBLE_EQ(sci, 2.5e-3);
}

}  // namespace
}  // namespace ivnet
