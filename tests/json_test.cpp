// Tests for ivnet/common/json: escaping and writer structure.
#include <gtest/gtest.h>

#include "ivnet/common/json.hpp"

namespace ivnet {
namespace {

TEST(JsonEscape, PassthroughAndSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string("ctl\x01") ), "ctl\\u0001");
}

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "ivn");
  w.field("antennas", 10);
  w.field("gain", 85.5);
  w.field("ok", true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"ivn\",\"antennas\":10,\"gain\":85.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("offsets").begin_array();
  w.value(0).value(7).value(20);
  w.end_array();
  w.key("rows").begin_array();
  w.begin_object().field("n", 1).end_object();
  w.begin_object().field("n", 2).end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"offsets\":[0,7,20],\"rows\":[{\"n\":1},{\"n\":2}]}");
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, TopLevelArray) {
  JsonWriter w;
  w.begin_array().value(1.5).value("x").value(false).end_array();
  EXPECT_EQ(w.str(), "[1.5,\"x\",false]");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::infinity()).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, SizeTValues) {
  JsonWriter w;
  w.begin_object().field("count", std::size_t{42}).end_object();
  EXPECT_EQ(w.str(), "{\"count\":42}");
}

TEST(JsonWriter, IncompleteIsReported) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
}

}  // namespace
}  // namespace ivnet
