// Tests for ivnet/gen2/link_timing: T1-T4 windows, exchange durations, and
// the per-command CIB envelope feasibility condition (Eq. 9 inverted).
#include <gtest/gtest.h>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/link_timing.hpp"
#include "ivnet/gen2/memory.hpp"

namespace ivnet::gen2 {
namespace {

TEST(LinkTiming, T1WindowOrdering) {
  const LinkTiming link;
  EXPECT_GT(link.t1_min_s(), 0.0);
  EXPECT_LT(link.t1_min_s(), link.t1_nominal_s());
  EXPECT_GT(link.t1_max_s(), link.t1_nominal_s());
  // At BLF 40 kHz the 10/BLF term dominates RTcal: nominal = 250 us.
  EXPECT_NEAR(link.t1_nominal_s(), 250e-6, 1e-9);
}

TEST(LinkTiming, T2T4Windows) {
  const LinkTiming link;
  EXPECT_NEAR(link.t2_min_s(), 75e-6, 1e-9);
  EXPECT_NEAR(link.t2_max_s(), 500e-6, 1e-9);
  EXPECT_NEAR(link.t4_min_s(), 150e-6, 1e-9);
}

TEST(LinkTiming, Fm0ReplyDuration) {
  // RN16: 12 preamble + 32 data + 2 dummy half-bits at 80 k half-bits/s.
  EXPECT_NEAR(fm0_reply_duration_s(16, 40e3), 46.0 / 80e3, 1e-12);
  // EPC frame (128 bits) takes ~3.4 ms.
  EXPECT_NEAR(fm0_reply_duration_s(128, 40e3), 270.0 / 80e3, 1e-12);
}

TEST(LinkTiming, QueryDurationNearPaperDeltaT) {
  // Sec. 3.6: "for a typical RFID reader's query, delta-t ~ 800 us". Our
  // default Tari (25 us) with full preamble lands on the same order.
  const PieTiming pie;
  const double query =
      pie_command_duration_s(QueryCommand{}.encode(), pie, true);
  EXPECT_GT(query, 500e-6);
  EXPECT_LT(query, 1.5e-3);
}

TEST(LinkTiming, InventoryExchangeUnderTenMs) {
  const double total = inventory_exchange_duration_s(PieTiming{}, LinkTiming{});
  EXPECT_GT(total, 4e-3);   // dominated by the 128-bit EPC reply
  EXPECT_LT(total, 10e-3);  // still well within one CIB period
}

TEST(LinkTiming, FlatTopMatchesEq9Inverse) {
  // Eq. 9 with alpha = 0.5 and RMS 199 Hz gives dt = 800 us.
  EXPECT_NEAR(peak_flat_top_s(199.0, 0.5), 800e-6, 10e-6);
  // And the inverse direction reproduces the paper's 199 Hz.
  EXPECT_NEAR(max_rms_for_command_s(800e-6, 0.5), 199.0, 1.0);
}

TEST(LinkTiming, PaperPlanQueryFitsItsPeak) {
  const auto plan = FrequencyPlan::paper_default();
  EXPECT_TRUE(command_fits_peak(QueryCommand{}.encode(), PieTiming{}, true,
                                plan.rms_offset_hz()));
}

TEST(LinkTiming, LongAccessCommandStrainsTheConstraint) {
  // A 58-bit Read is ~2.3 ms of PIE: it no longer fits the flat top of a
  // plan sized AT the 199 Hz limit, but still fits the paper's actual
  // 82 Hz-RMS plan — the Sec. 3.7 "incorporate into the delta-t
  // constraint" effect, quantified.
  const auto read_bits = ReadCommand{.word_count = 4}.encode();
  EXPECT_FALSE(command_fits_peak(read_bits, PieTiming{}, false, 199.0));
  const auto plan = FrequencyPlan::paper_default();
  EXPECT_TRUE(
      command_fits_peak(read_bits, PieTiming{}, false, plan.rms_offset_hz()));
}

TEST(LinkTiming, FlatTopShrinksWithRms) {
  EXPECT_GT(peak_flat_top_s(50.0), peak_flat_top_s(100.0));
  EXPECT_GT(peak_flat_top_s(100.0), peak_flat_top_s(200.0));
  EXPECT_GT(peak_flat_top_s(0.0), 1e6);  // single tone never droops
}

// Property: for any command length, the Eq. 9 pair (flat-top, max-RMS) is
// self-consistent: a command exactly dt long fits a plan at max_rms(dt).
class Eq9Consistency : public ::testing::TestWithParam<double> {};

TEST_P(Eq9Consistency, InverseFunctionsAgree) {
  const double dt = GetParam();
  const double rms = max_rms_for_command_s(dt);
  EXPECT_NEAR(peak_flat_top_s(rms), dt, dt * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Durations, Eq9Consistency,
                         ::testing::Values(100e-6, 400e-6, 800e-6, 2e-3,
                                           5e-3));

}  // namespace
}  // namespace ivnet::gen2
