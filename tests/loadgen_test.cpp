// Load-harness suite: the MMPP/DTMC schedule generator must be a pure
// function of its config (byte-identical fingerprints per seed, across
// pool sizes, across service worker counts), its chain must actually walk
// the configured transition matrix, and the closed-loop replay must honour
// its concurrency window.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/svc/loadgen.hpp"
#include "ivnet/svc/service.hpp"

namespace ivnet::svc {
namespace {

LoadState state_of(double rate, RequestKind kind, std::uint32_t trials) {
  LoadState s;
  s.rate_rps = rate;
  s.kind = kind;
  s.trials = trials;
  s.antennas = 2;
  s.snr_db = 14.0;
  return s;
}

LoadGenConfig two_state_config(std::size_t requests, std::uint64_t seed) {
  LoadGenConfig config;
  config.states = {state_of(100.0, RequestKind::kDecode, 2),
                   state_of(400.0, RequestKind::kInventory, 1)};
  config.transition = {0.7, 0.3, 0.4, 0.6};
  config.requests = requests;
  config.seed = seed;
  return config;
}

TEST(LoadGenTest, ScheduleIsDeterministicPerSeed) {
  const LoadGenConfig config = two_state_config(500, 11);
  const std::string a = schedule_json(generate_schedule(config));
  const std::string b = schedule_json(generate_schedule(config));
  EXPECT_EQ(a, b) << "same config must produce a byte-identical schedule";

  LoadGenConfig other = config;
  other.seed = 12;
  EXPECT_NE(schedule_json(generate_schedule(other)), a)
      << "a different seed must re-time the arrivals";
}

TEST(LoadGenTest, ScheduleIndependentOfPoolSize) {
  // The generator never touches the parallel pool, and this pins it: the
  // schedule bytes must not depend on how the rest of the process is
  // provisioned.
  const LoadGenConfig config = two_state_config(300, 21);
  set_parallel_threads(1);
  const std::string reference = schedule_json(generate_schedule(config));
  for (const std::size_t threads : {2, 8}) {
    set_parallel_threads(threads);
    EXPECT_EQ(schedule_json(generate_schedule(config)), reference)
        << "pool size " << threads;
  }
  set_parallel_threads(0);
}

TEST(LoadGenTest, ScheduleShapeAndMonotonicTimestamps) {
  const LoadGenConfig config = two_state_config(400, 31);
  const auto schedule = generate_schedule(config);
  ASSERT_EQ(schedule.size(), 400u);
  double prev = 0.0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].request.id, i);
    EXPECT_GT(schedule[i].t_s, prev) << "timestamps strictly increase";
    prev = schedule[i].t_s;
    const LoadState& state = config.states[schedule[i].state];
    EXPECT_EQ(schedule[i].request.kind, state.kind);
    EXPECT_EQ(schedule[i].request.trials, state.trials);
  }
}

TEST(LoadGenTest, TransitionFrequenciesMatchMatrix) {
  // 30k arrivals: empirical per-row transition frequencies within 2% of
  // the configured matrix.
  const LoadGenConfig config = two_state_config(30000, 5);
  const auto schedule = generate_schedule(config);
  std::size_t from[2] = {0, 0};
  std::size_t moved[2][2] = {{0, 0}, {0, 0}};
  for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
    const std::size_t s = schedule[i].state;
    ++from[s];
    ++moved[s][schedule[i + 1].state];
  }
  for (std::size_t row = 0; row < 2; ++row) {
    ASSERT_GT(from[row], 1000u) << "chain failed to visit state " << row;
    for (std::size_t col = 0; col < 2; ++col) {
      const double empirical = static_cast<double>(moved[row][col]) /
                               static_cast<double>(from[row]);
      EXPECT_NEAR(empirical, config.transition[row * 2 + col], 0.02)
          << "transition " << row << "->" << col;
    }
  }
}

TEST(LoadGenTest, InterArrivalMeanTracksStateRateAndScale) {
  LoadGenConfig config = two_state_config(30000, 9);
  config.rate_scale = 2.0;
  const auto schedule = generate_schedule(config);
  double sum_dt[2] = {0.0, 0.0};
  std::size_t n_dt[2] = {0, 0};
  double prev_t = 0.0;
  for (const ScheduledRequest& s : schedule) {
    sum_dt[s.state] += s.t_s - prev_t;
    ++n_dt[s.state];
    prev_t = s.t_s;
  }
  for (std::size_t state = 0; state < 2; ++state) {
    const double expected =
        1.0 / (config.states[state].rate_rps * config.rate_scale);
    const double mean = sum_dt[state] / static_cast<double>(n_dt[state]);
    EXPECT_NEAR(mean, expected, 0.05 * expected)
        << "state " << state << " inter-arrival mean off";
  }
}

TEST(LoadGenTest, StateOccupancyMatchesStationaryDistribution) {
  // Stationary distribution of {{0.7,0.3},{0.4,0.6}} is (4/7, 3/7).
  const auto schedule = generate_schedule(two_state_config(30000, 3));
  const auto counts = state_occupancy(schedule, 2);
  const double total = static_cast<double>(counts[0] + counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, 4.0 / 7.0, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 3.0 / 7.0, 0.02);
}

TEST(LoadGenTest, DegenerateSingleStateChainNeedsNoMatrix) {
  LoadGenConfig config;
  config.states = {state_of(250.0, RequestKind::kDecode, 1)};
  config.requests = 2000;
  config.seed = 17;
  const auto schedule = generate_schedule(config);
  ASSERT_EQ(schedule.size(), 2000u);
  for (const ScheduledRequest& s : schedule) EXPECT_EQ(s.state, 0u);
  EXPECT_NEAR(schedule.back().t_s, 2000.0 / 250.0, 0.5);
}

TEST(LoadGenTest, ResponseDigestIdenticalAcrossWorkerCounts) {
  // End-to-end determinism: the same schedule served by 1, 2, and 8 workers
  // must produce the same order-independent response digest. This is the
  // service's core contract — provisioning is a latency knob, never a
  // results knob.
  const auto schedule = generate_schedule(two_state_config(64, 77));
  auto run = [&](std::size_t workers) {
    ServiceConfig config;
    config.workers = workers;
    config.queue_depth = 128;  // > requests: nothing sheds
    LatencyCollector collector;
    InventoryService service(config, collector.sink());
    const ReplayResult replay =
        run_closed_loop(service, collector, schedule, 4 * workers);
    service.stop();
    EXPECT_EQ(replay.accepted, schedule.size());
    EXPECT_EQ(replay.rejected, 0u);
    EXPECT_EQ(collector.completed(), schedule.size());
    return collector.digest();
  };
  const std::uint64_t reference = run(1);
  EXPECT_NE(reference, 0u);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
  EXPECT_EQ(run(8), reference) << "rerun at the same width must also match";
}

TEST(LoadGenTest, ClosedLoopNeverExceedsConcurrencyWindow) {
  constexpr std::size_t kWindow = 3;
  const auto schedule = generate_schedule(two_state_config(120, 13));
  ServiceConfig config;
  config.workers = 8;  // more workers than window: the window must bind
  config.queue_depth = 128;
  LatencyCollector collector;
  InventoryService service(config, collector.sink());
  const ReplayResult replay =
      run_closed_loop(service, collector, schedule, kWindow);
  service.stop();
  EXPECT_EQ(replay.accepted, schedule.size());
  EXPECT_EQ(replay.rejected, 0u);
  EXPECT_LE(service.inflight_peak(), kWindow)
      << "closed loop must keep at most `window` requests in flight";
}

TEST(LatencyCollectorTest, QuantilesAreExactNearestRank) {
  LatencyCollector collector;
  for (int i = 100; i >= 1; --i) {  // reversed insert: order must not matter
    Response r;
    r.id = static_cast<std::uint64_t>(i);
    r.queue_wait_s = static_cast<double>(i);    // 1..100
    r.service_s = static_cast<double>(i) * 2.0;  // 2..200
    collector.record(r);
  }
  EXPECT_EQ(collector.completed(), 100u);
  EXPECT_EQ(collector.queue_wait_quantile(0.50), 50.0);
  EXPECT_EQ(collector.queue_wait_quantile(0.99), 99.0);
  EXPECT_EQ(collector.queue_wait_quantile(1.0), 100.0);
  EXPECT_EQ(collector.queue_wait_quantile(0.0), 1.0);
  EXPECT_EQ(collector.service_quantile(0.50), 100.0);
  EXPECT_EQ(collector.latency_quantile(1.0), 300.0);
}

TEST(LatencyCollectorTest, DigestIsOrderIndependent) {
  auto digest_of = [](const std::vector<std::uint64_t>& ids) {
    LatencyCollector collector;
    for (const std::uint64_t id : ids) {
      Response r;
      r.id = id;
      r.succeeded = static_cast<std::uint32_t>(id % 3);
      r.sim_elapsed_s = static_cast<double>(id) * 0.25;
      collector.record(r);
    }
    return collector.digest();
  };
  EXPECT_EQ(digest_of({1, 2, 3, 4}), digest_of({4, 3, 2, 1}));
  EXPECT_NE(digest_of({1, 2, 3, 4}), digest_of({1, 2, 3, 5}));
}

}  // namespace
}  // namespace ivnet::svc
