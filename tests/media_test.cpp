// Tests for ivnet/media: dielectric physics against the paper's quoted
// ranges (Sec. 2.2.1), and layered-stack composition.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/media/layered.hpp"
#include "ivnet/media/medium.hpp"

namespace ivnet {
namespace {

constexpr double kF = 915e6;

TEST(Medium, AirIsLossless) {
  const auto air = media::air();
  EXPECT_DOUBLE_EQ(air.alpha(kF), 0.0);
  EXPECT_NEAR(std::abs(air.impedance(kF)), kEta0, 0.1);
  EXPECT_NEAR(air.wavelength_in(kF), wavelength(kF), 1e-6);
}

TEST(Medium, TissueAlphaInPaperRange) {
  // Sec. 2.2.1: "alpha can vary between 13 m^-1 and 80 m^-1" for tissues.
  for (const auto& m : {media::muscle(), media::skin(), media::chicken(),
                        media::gastric_fluid(), media::intestinal_fluid(),
                        media::stomach_wall()}) {
    EXPECT_GE(m.alpha(kF), 13.0) << m.name();
    EXPECT_LE(m.alpha(kF), 80.0) << m.name();
  }
}

TEST(Medium, TissueLossPerCmInPaperRange) {
  // Sec. 2.2.1: 2.3 to 6.9 dB/cm for low-GHz RF in tissues (we accept a
  // slightly wider band for the lossy-muscle group).
  for (const auto& m : {media::muscle(), media::skin(),
                        media::gastric_fluid(), media::intestinal_fluid()}) {
    EXPECT_GE(m.power_loss_db_per_cm(kF), 1.8) << m.name();
    EXPECT_LE(m.power_loss_db_per_cm(kF), 6.9) << m.name();
  }
}

TEST(Medium, FatIsMuchLessLossyThanMuscle) {
  EXPECT_LT(media::fat().alpha(kF), media::muscle().alpha(kF) / 3.0);
}

TEST(Medium, WavelengthShrinksWithPermittivity) {
  const auto muscle = media::muscle();
  EXPECT_NEAR(muscle.wavelength_in(kF),
              wavelength(kF) / std::sqrt(muscle.eps_r()), 0.01);
}

TEST(Medium, AlphaIncreasesWithConductivity) {
  const Medium low("low", 50.0, 0.5);
  const Medium high("high", 50.0, 1.5);
  EXPECT_LT(low.alpha(kF), high.alpha(kF));
}

TEST(Medium, AlphaIncreasesWithFrequencyForConductiveMedium) {
  const auto water = media::water();
  EXPECT_LT(water.alpha(400e6), water.alpha(2.4e9));
}

TEST(Medium, ImpedanceDropsWithPermittivity) {
  EXPECT_LT(std::abs(media::water().impedance(kF)), 60.0);
  EXPECT_GT(std::abs(media::fat().impedance(kF)), 120.0);
}

TEST(Boundary, AirToTissueLossInPaperRange) {
  // Sec. 2.2.1: "a loss of around 3-5 dB" at the air-tissue boundary.
  for (const auto& m : {media::muscle(), media::skin(), media::water(),
                        media::gastric_fluid()}) {
    const double loss = boundary_loss_db(media::air(), m, kF);
    EXPECT_GE(loss, 3.0) << m.name();
    EXPECT_LE(loss, 5.0) << m.name();
  }
}

TEST(Boundary, SameMediumIsLossless) {
  const auto m = media::muscle();
  EXPECT_NEAR(boundary_power_transmittance(m, m, kF), 1.0, 1e-9);
}

TEST(Boundary, PowerTransmittanceReciprocal) {
  // Poynting-flux transmittance across a boundary is direction-symmetric
  // for low-loss dielectrics.
  const auto a = media::air();
  const auto w = media::water();
  EXPECT_NEAR(boundary_power_transmittance(a, w, kF),
              boundary_power_transmittance(w, a, kF), 0.02);
}

TEST(Layered, EmptyStackIsTransparent) {
  const LayeredMedium stack;
  const auto t = stack.field_transfer(kF);
  EXPECT_NEAR(std::abs(t), 1.0, 1e-12);
}

TEST(Layered, SingleSlabMatchesManualComputation) {
  LayeredMedium stack;
  const auto muscle = media::muscle();
  stack.add_layer(muscle, 0.05);
  const double expected_mag =
      std::abs(boundary_transmission(media::air(), muscle, kF)) *
      std::exp(-muscle.alpha(kF) * 0.05);
  EXPECT_NEAR(std::abs(stack.field_transfer(kF)), expected_mag, 1e-9);
}

TEST(Layered, LossAccumulatesWithDepth) {
  LayeredMedium stack;
  stack.add_layer(media::muscle(), 0.10);
  double prev = 1.0;
  for (double d = 0.01; d <= 0.10; d += 0.01) {
    const double mag = std::abs(stack.field_transfer_at_depth(kF, d));
    EXPECT_LT(mag, prev);
    prev = mag;
  }
}

TEST(Layered, DepthBeyondStackContinuesInLastMedium) {
  LayeredMedium stack;
  stack.add_layer(media::muscle(), 0.02);
  const double at_edge = std::abs(stack.field_transfer_at_depth(kF, 0.02));
  const double beyond = std::abs(stack.field_transfer_at_depth(kF, 0.03));
  EXPECT_NEAR(beyond, at_edge * std::exp(-media::muscle().alpha(kF) * 0.01),
              1e-9);
}

TEST(Layered, MediumAtDepthSelectsCorrectLayer) {
  LayeredMedium stack;
  stack.add_layer(media::skin(), 0.004).add_layer(media::fat(), 0.02);
  EXPECT_EQ(stack.medium_at_depth(0.002).name(), "skin");
  EXPECT_EQ(stack.medium_at_depth(0.01).name(), "fat");
  EXPECT_EQ(stack.medium_at_depth(0.5).name(), "fat");
}

TEST(Layered, TotalLossDbPositiveAndFiveCmMuscleMatchesPaper) {
  // Sec. 2.2.1: "a loss of 11.5 to 35.4 dB at a depth of 5 cm" plus the
  // 3-5 dB boundary loss.
  LayeredMedium stack;
  stack.add_layer(media::muscle(), 0.05);
  const double loss = stack.total_loss_db(kF);
  EXPECT_GE(loss, 11.5);
  EXPECT_LE(loss, 40.4);
}

TEST(Layered, SwineStacksHaveExpectedStructure) {
  const auto gastric = swine_gastric_stack();
  EXPECT_EQ(gastric.layers().size(), 5u);
  EXPECT_GT(gastric.total_loss_db(kF), 20.0);
  const auto subcut = swine_subcutaneous_stack();
  EXPECT_EQ(subcut.layers().size(), 2u);
  EXPECT_LT(subcut.total_loss_db(kF), gastric.total_loss_db(kF));
}

// Property: field transfer magnitude is <= 1 through any passive stack.
class PassiveStack : public ::testing::TestWithParam<double> {};

TEST_P(PassiveStack, TransferNeverExceedsUnity) {
  LayeredMedium stack;
  stack.add_layer(media::skin(), 0.004)
      .add_layer(media::fat(), 0.01)
      .add_layer(media::muscle(), GetParam());
  for (double f : {400e6, 915e6, 2.4e9}) {
    EXPECT_LE(std::abs(stack.field_transfer(f)), 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PassiveStack,
                         ::testing::Values(0.0, 0.01, 0.03, 0.07, 0.15));

}  // namespace
}  // namespace ivnet
