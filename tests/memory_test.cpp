// Tests for ivnet/gen2/memory + ivnet/tag/sensor: tag memory banks, the
// Req_RN / Read / Write access layer, and the gastric sensor publishing
// vital signs into USER memory.
#include <gtest/gtest.h>

#include "ivnet/gen2/memory.hpp"
#include "ivnet/gen2/tag_sm.hpp"
#include "ivnet/tag/sensor.hpp"

namespace ivnet::gen2 {
namespace {

TEST(TagMemory, BankSizesAndDefaults) {
  TagMemory mem;
  EXPECT_EQ(mem.size(MemBank::kUser), 32u);
  EXPECT_EQ(mem.size(MemBank::kEpc), 8u);
  EXPECT_EQ(mem.read(MemBank::kUser, 0).value(), 0u);
  EXPECT_FALSE(mem.read(MemBank::kUser, 999).has_value());
}

TEST(TagMemory, WriteReadRoundTrip) {
  TagMemory mem;
  EXPECT_TRUE(mem.write(MemBank::kUser, 5, 0xBEEF));
  EXPECT_EQ(mem.read(MemBank::kUser, 5).value(), 0xBEEF);
  EXPECT_FALSE(mem.write(MemBank::kUser, 999, 1));
}

TEST(TagMemory, LockPreventsWrites) {
  TagMemory mem;
  EXPECT_TRUE(mem.is_locked(MemBank::kTid));  // factory locked
  EXPECT_FALSE(mem.write(MemBank::kTid, 0, 1));
  mem.lock(MemBank::kUser);
  EXPECT_FALSE(mem.write(MemBank::kUser, 0, 1));
}

TEST(AccessCommands, EncodeParseRoundTrips) {
  const ReqRnCommand req{.rn16 = 0x1234};
  auto parsed_req = ReqRnCommand::parse(req.encode());
  ASSERT_TRUE(parsed_req.has_value());
  EXPECT_EQ(parsed_req->rn16, 0x1234);

  const ReadCommand read{.bank = MemBank::kUser,
                         .word_addr = 7,
                         .word_count = 3,
                         .handle = 0xABCD};
  auto parsed_read = ReadCommand::parse(read.encode());
  ASSERT_TRUE(parsed_read.has_value());
  EXPECT_EQ(parsed_read->bank, MemBank::kUser);
  EXPECT_EQ(parsed_read->word_addr, 7);
  EXPECT_EQ(parsed_read->word_count, 3);
  EXPECT_EQ(parsed_read->handle, 0xABCD);

  const WriteCommand write{.bank = MemBank::kUser,
                           .word_addr = 2,
                           .data = 0x5A5A,
                           .handle = 0xABCD};
  auto parsed_write = WriteCommand::parse(write.encode());
  ASSERT_TRUE(parsed_write.has_value());
  EXPECT_EQ(parsed_write->data, 0x5A5A);
}

TEST(AccessCommands, CrcGuardsCommands) {
  auto bits = ReadCommand{}.encode();
  bits[20] = !bits[20];
  EXPECT_FALSE(ReadCommand::parse(bits).has_value());
}

TEST(AccessCommands, ClassifyAccess) {
  EXPECT_EQ(classify_access(ReqRnCommand{}.encode()), AccessKind::kReqRn);
  EXPECT_EQ(classify_access(ReadCommand{}.encode()), AccessKind::kRead);
  EXPECT_EQ(classify_access(WriteCommand{}.encode()), AccessKind::kWrite);
  EXPECT_EQ(classify_access(QueryCommand{}.encode()), AccessKind::kNone);
}

TEST(AccessCommands, ReadReplyRoundTrip) {
  const std::vector<std::uint16_t> words = {0x1111, 0x2222};
  const auto reply = read_reply(words, 0xFEED);
  EXPECT_EQ(parse_read_reply(reply, 2, 0xFEED), words);
  EXPECT_TRUE(parse_read_reply(reply, 2, 0xBEEF).empty());  // wrong handle
  EXPECT_TRUE(parse_read_reply(reply, 3, 0xFEED).empty());  // wrong count
}

class AccessSession : public ::testing::Test {
 protected:
  AccessSession() : tag_(make_epc(), 7) {
    tag_.power_up();
    const auto rn = tag_.on_command(QueryCommand{.q = 0}.encode());
    EXPECT_TRUE(rn.has_value());
    const auto epc =
        tag_.on_command(AckCommand{.rn16 = tag_.last_rn16()}.encode());
    EXPECT_TRUE(epc.has_value());
  }

  static Bits make_epc() {
    Bits epc;
    append_bits(epc, 0xE200u, 16);
    for (int i = 0; i < 5; ++i) append_bits(epc, 0x1234u, 16);
    return epc;
  }

  std::uint16_t secure() {
    const auto reply =
        tag_.on_command(ReqRnCommand{.rn16 = tag_.last_rn16()}.encode());
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(tag_.state(), TagState::kOpen);
    return tag_.handle();
  }

  TagStateMachine tag_;
};

TEST_F(AccessSession, ReqRnIssuesHandle) {
  const auto handle = secure();
  EXPECT_NE(handle, 0);
}

TEST_F(AccessSession, ReqRnRejectedWithWrongRn16) {
  const auto wrong = static_cast<std::uint16_t>(tag_.last_rn16() ^ 1);
  EXPECT_FALSE(tag_.on_command(ReqRnCommand{.rn16 = wrong}.encode())
                   .has_value());
  EXPECT_EQ(tag_.state(), TagState::kAcknowledged);
}

TEST_F(AccessSession, ReadFetchesMemory) {
  tag_.memory().write(MemBank::kUser, 0, 3860);
  tag_.memory().write(MemBank::kUser, 1, 220);
  const auto handle = secure();
  const auto reply = tag_.on_command(
      ReadCommand{.bank = MemBank::kUser, .word_addr = 0, .word_count = 2,
                  .handle = handle}
          .encode());
  ASSERT_TRUE(reply.has_value());
  const auto words = parse_read_reply(*reply, 2, handle);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], 3860);
  EXPECT_EQ(words[1], 220);
}

TEST_F(AccessSession, ReadSilentWithWrongHandle) {
  const auto handle = secure();
  EXPECT_FALSE(
      tag_.on_command(ReadCommand{.bank = MemBank::kUser,
                                  .word_addr = 0,
                                  .word_count = 1,
                                  .handle = static_cast<std::uint16_t>(
                                      handle ^ 0xFF)}
                          .encode())
          .has_value());
}

TEST_F(AccessSession, WriteThenReadBack) {
  const auto handle = secure();
  const auto wr = tag_.on_command(WriteCommand{.bank = MemBank::kUser,
                                               .word_addr = 9,
                                               .data = 0xCAFE,
                                               .handle = handle}
                                      .encode());
  ASSERT_TRUE(wr.has_value());
  EXPECT_EQ(tag_.memory().read(MemBank::kUser, 9).value(), 0xCAFE);
}

TEST_F(AccessSession, WriteToLockedBankSilent) {
  const auto handle = secure();
  tag_.memory().lock(MemBank::kUser);
  EXPECT_FALSE(tag_.on_command(WriteCommand{.bank = MemBank::kUser,
                                            .word_addr = 0,
                                            .data = 1,
                                            .handle = handle}
                                   .encode())
                   .has_value());
}

TEST_F(AccessSession, AccessRequiresOpenState) {
  // Without Req_RN the tag ignores Read.
  EXPECT_FALSE(tag_.on_command(ReadCommand{.bank = MemBank::kUser,
                                           .word_addr = 0,
                                           .word_count = 1,
                                           .handle = 0}
                                   .encode())
                   .has_value());
}

}  // namespace
}  // namespace ivnet::gen2

namespace ivnet {
namespace {

TEST(GastricSensor, PublishesAllWords) {
  gen2::TagMemory mem;
  GastricSensor sensor(1);
  ASSERT_TRUE(sensor.publish(0.0, mem));
  const auto temp = mem.read(gen2::MemBank::kUser,
                             static_cast<std::size_t>(SensorWord::kTemperature));
  const auto ph =
      mem.read(gen2::MemBank::kUser, static_cast<std::size_t>(SensorWord::kPh));
  const auto counter = mem.read(gen2::MemBank::kUser,
                                static_cast<std::size_t>(SensorWord::kCounter));
  ASSERT_TRUE(temp && ph && counter);
  EXPECT_NEAR(GastricSensor::decode_temperature(*temp), 38.6, 0.5);
  EXPECT_NEAR(GastricSensor::decode_ph(*ph), 2.2, 0.4);
  EXPECT_EQ(*counter, 1u);
}

TEST(GastricSensor, CounterIncrements) {
  gen2::TagMemory mem;
  GastricSensor sensor(2);
  for (int k = 0; k < 5; ++k) sensor.publish(k * 1.0, mem);
  EXPECT_EQ(sensor.samples_published(), 5u);
  EXPECT_EQ(mem.read(gen2::MemBank::kUser,
                     static_cast<std::size_t>(SensorWord::kCounter))
                .value(),
            5u);
}

TEST(GastricSensor, BreathingModulatesPressure) {
  gen2::TagMemory mem;
  GastricSensor sensor(3);
  sensor.pressure_model.noise_sigma = 0.0;
  double lo = 1e9, hi = -1e9;
  for (double t = 0.0; t < 4.0; t += 0.25) {
    sensor.publish(t, mem);
    const double p = GastricSensor::decode_pressure(
        mem.read(gen2::MemBank::kUser,
                 static_cast<std::size_t>(SensorWord::kPressure))
            .value());
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi - lo, 2.0);  // respiratory swing visible
}

TEST(GastricSensor, EncodingsRoundTrip) {
  EXPECT_NEAR(GastricSensor::decode_temperature(
                  GastricSensor::encode_temperature(37.42)),
              37.42, 0.01);
  EXPECT_NEAR(GastricSensor::decode_ph(GastricSensor::encode_ph(7.01)), 7.01,
              0.01);
  EXPECT_NEAR(GastricSensor::decode_pressure(
                  GastricSensor::encode_pressure(12.3)),
              12.3, 0.1);
}

TEST(GastricSensor, EncodingsClampOutOfRange) {
  EXPECT_EQ(GastricSensor::encode_ph(-3.0), 0u);
  EXPECT_EQ(GastricSensor::encode_ph(99.0), 1400u);
}

}  // namespace
}  // namespace ivnet
