// Tests for ivnet/gen2/miller: Miller M2/M4/M8 subcarrier encodings — the
// Gen2 uplink modes the Query's M field selects (Sec. 3.7 scaling knobs).
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/miller.hpp"

namespace ivnet::gen2 {
namespace {

Bits random_bits(std::size_t n, Rng& rng) {
  Bits bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.uniform() < 0.5;
  return bits;
}

TEST(Miller, ModeToSubcarrierCycles) {
  EXPECT_EQ(miller_m(Miller::kFm0), 1u);
  EXPECT_EQ(miller_m(Miller::kM2), 2u);
  EXPECT_EQ(miller_m(Miller::kM4), 4u);
  EXPECT_EQ(miller_m(Miller::kM8), 8u);
}

TEST(Miller, ChipCountsScaleWithM) {
  const Bits bits(8, true);
  const auto m2 = miller_encode_chips(Miller::kM2, bits);
  const auto m4 = miller_encode_chips(Miller::kM4, bits);
  EXPECT_EQ(m4.size(), 2 * m2.size());
  // preamble(10 symbols) + data(8) + dummy(1) = 19 symbols of 2M chips.
  EXPECT_EQ(m2.size(), 19u * 4u);
  EXPECT_EQ(m4.size(), 19u * 8u);
}

TEST(Miller, SubcarrierAlternatesWithinData0) {
  // For a data-0, all chips follow the alternating subcarrier with no
  // mid-symbol phase flip.
  const auto chips = miller_encode_chips(Miller::kM4, {false});
  const std::size_t pre = miller_preamble_chips(Miller::kM4).size();
  const bool base = chips[pre];
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(chips[pre + j], base != ((j & 1) != 0)) << j;
  }
}

TEST(Miller, Data1FlipsMidSymbol) {
  const auto chips = miller_encode_chips(Miller::kM4, {true});
  const std::size_t pre = miller_preamble_chips(Miller::kM4).size();
  const bool base = chips[pre];
  // First half coherent with base, second half inverted.
  EXPECT_EQ(chips[pre + 3], base != true);   // j=3 odd -> !base
  EXPECT_EQ(chips[pre + 4], !(base != false));  // j=4 even, flipped
}

class MillerRoundTrip : public ::testing::TestWithParam<Miller> {};

TEST_P(MillerRoundTrip, CleanDecode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (int k = 0; k < 10; ++k) {
    const Bits bits = random_bits(16, rng);
    const auto sig = miller_modulate(GetParam(), bits, 40e3, 1.6e6);
    const auto decoded = miller_decode(GetParam(), sig, 16, 40e3, 1.6e6);
    ASSERT_TRUE(decoded.valid);
    EXPECT_EQ(decoded.bits, bits);
    EXPECT_GT(decoded.preamble_correlation, 0.99);
  }
}

TEST_P(MillerRoundTrip, PolarityInversion) {
  Rng rng(7);
  const Bits bits = random_bits(16, rng);
  auto sig = miller_modulate(GetParam(), bits, 40e3, 1.6e6);
  for (auto& s : sig) s = -s;
  const auto decoded = miller_decode(GetParam(), sig, 16, 40e3, 1.6e6);
  ASSERT_TRUE(decoded.valid);
  EXPECT_TRUE(decoded.inverted);
  EXPECT_EQ(decoded.bits, bits);
}

TEST_P(MillerRoundTrip, DelayedBurstLocated) {
  Rng rng(8);
  const Bits bits = random_bits(16, rng);
  const auto sig = miller_modulate(GetParam(), bits, 40e3, 1.6e6);
  std::vector<double> padded(173, 0.0);
  padded.insert(padded.end(), sig.begin(), sig.end());
  padded.insert(padded.end(), 120, 0.0);
  const auto decoded = miller_decode(GetParam(), padded, 16, 40e3, 1.6e6);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.preamble_offset, 173u);
  EXPECT_EQ(decoded.bits, bits);
}

INSTANTIATE_TEST_SUITE_P(Modes, MillerRoundTrip,
                         ::testing::Values(Miller::kM2, Miller::kM4,
                                           Miller::kM8));

TEST(Miller, ProcessingGainOrdering) {
  EXPECT_DOUBLE_EQ(miller_processing_gain_db(Miller::kFm0), 0.0);
  EXPECT_NEAR(miller_processing_gain_db(Miller::kM2), 3.01, 0.01);
  EXPECT_NEAR(miller_processing_gain_db(Miller::kM4), 6.02, 0.01);
  EXPECT_NEAR(miller_processing_gain_db(Miller::kM8), 9.03, 0.01);
}

TEST(Miller, HigherMSurvivesMoreNoise) {
  // At an SNR where M2 fails, M8's longer symbols should still decode
  // (the deep-tissue rationale for Miller modes).
  // Note: the normalized preamble correlation converges to the same value
  // for all M (it measures SNR, not energy), so the gate is relaxed here
  // and the comparison is on BIT decisions, where M8 integrates 4x more
  // chips per bit than M2.
  Rng rng(9);
  const Bits bits = random_bits(16, rng);
  const double sigma = 3.2;
  int m2_ok = 0, m8_ok = 0;
  for (int trial = 0; trial < 12; ++trial) {
    auto s2 = miller_modulate(Miller::kM2, bits, 40e3, 1.6e6);
    auto s8 = miller_modulate(Miller::kM8, bits, 40e3, 1.6e6);
    for (auto& s : s2) s += rng.normal(0.0, sigma);
    for (auto& s : s8) s += rng.normal(0.0, sigma);
    const auto d2 = miller_decode(Miller::kM2, s2, 16, 40e3, 1.6e6, 0.2);
    const auto d8 = miller_decode(Miller::kM8, s8, 16, 40e3, 1.6e6, 0.2);
    m2_ok += (d2.valid && d2.bits == bits);
    m8_ok += (d8.valid && d8.bits == bits);
  }
  EXPECT_GT(m8_ok, m2_ok);
  EXPECT_GE(m8_ok, 10);
}

}  // namespace
}  // namespace ivnet::gen2
