// Tests for ivnet/sim/mobility: time-varying channels under breathing
// motion, and the CIB-vs-stale-MIMO robustness property of Sec. 3.7.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/sim/mobility.hpp"

namespace ivnet {
namespace {

TimeVaryingChannel make_tv_channel(std::size_t n, Rng& rng,
                                   MotionModel motion = MotionModel{}) {
  const std::vector<double> amps(n, 1.0);
  return TimeVaryingChannel(make_blind_channel(amps, rng), motion);
}

TEST(Motion, DisplacementPeriodicAndBounded) {
  const MotionModel m;
  EXPECT_NEAR(m.displacement_at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(m.displacement_at(1.0), m.displacement_at(1.0 + 4.0), 1e-9);
  for (double t = 0.0; t < 4.0; t += 0.1) {
    EXPECT_LE(std::abs(m.displacement_at(t)), m.breathing_amplitude_m + 1e-12);
  }
}

TEST(Motion, PhaseSwingMatchesWavelength) {
  // 4 mm breathing amplitude against a 4 cm tissue wavelength: peak phase
  // swing 2*pi*0.004/0.04 = 0.63 rad (~36 degrees).
  const MotionModel m;
  double peak = 0.0;
  for (double t = 0.0; t < 4.0; t += 0.05) {
    peak = std::max(peak, std::abs(m.phase_shift_at(t)));
  }
  EXPECT_NEAR(peak, kTwoPi * 0.004 / 0.04, 0.02);
}

TEST(Motion, DriftAccumulates) {
  MotionModel m;
  m.breathing_amplitude_m = 0.0;
  m.drift_m_per_s = 0.001;
  EXPECT_NEAR(m.displacement_at(10.0), 0.01, 1e-12);
}

TEST(TimeVarying, SnapshotPreservesMagnitudes) {
  Rng rng(1);
  const auto tv = make_tv_channel(4, rng);
  const auto snap = tv.at_time(1.7);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(snap.gain(i, 0.0)), std::abs(tv.base().gain(i, 0.0)),
                1e-12);
  }
}

TEST(TimeVarying, PhasesMoveBetweenSnapshots) {
  Rng rng(2);
  const auto tv = make_tv_channel(4, rng);
  const auto a = tv.gain(0, 0.0, 0.0);
  const auto b = tv.gain(0, 0.0, 1.0);  // quarter breath later
  EXPECT_GT(std::abs(std::arg(a) - std::arg(b)), 0.05);
}

TEST(TimeVarying, AntennasDecorrelate) {
  Rng rng(3);
  const auto tv = make_tv_channel(8, rng);
  // The motion-induced phase shift differs across antennas (projection).
  const double shift0 =
      std::arg(tv.gain(0, 0.0, 1.0) * std::conj(tv.gain(0, 0.0, 0.0)));
  const double shift7 =
      std::arg(tv.gain(7, 0.0, 1.0) * std::conj(tv.gain(7, 0.0, 0.0)));
  EXPECT_GT(std::abs(shift0 - shift7), 0.05);
}

TEST(StaleMimo, FreshCsiIsPerfect) {
  Rng rng(4);
  const auto tv = make_tv_channel(8, rng);
  EXPECT_NEAR(stale_mimo_amplitude(tv, 1.0, 0.0), 8.0, 1e-9);
}

TEST(StaleMimo, StaleCsiDegrades) {
  Rng rng(5);
  MotionModel strong;
  strong.breathing_amplitude_m = 0.008;  // deep breathing
  const auto tv = make_tv_channel(8, rng, strong);
  // Average over the breath cycle: stale precoding loses coherence.
  double fresh = 0.0, stale = 0.0;
  int samples = 0;
  for (double t = 2.0; t < 6.0; t += 0.25) {
    fresh += stale_mimo_amplitude(tv, t, 0.0);
    stale += stale_mimo_amplitude(tv, t, 2.0);  // 2 s old estimate
    ++samples;
  }
  fresh /= samples;
  stale /= samples;
  EXPECT_NEAR(fresh, 8.0, 1e-9);
  EXPECT_LT(stale, 0.9 * fresh);
}

TEST(CibUnderMotion, PeakStableAcrossTheBreath) {
  // Sec. 3.7: CIB is robust to mobility — its peak needs no estimate, so
  // motion only re-rolls the (already random) phases.
  Rng rng(6);
  const auto tv = make_tv_channel(8, rng);
  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  double lo = 1e9, hi = 0.0;
  for (double t = 0.0; t < 4.0; t += 0.5) {
    const double peak = cib_peak_amplitude_at(tv, t, offsets);
    lo = std::min(lo, peak);
    hi = std::max(hi, peak);
  }
  EXPECT_GT(lo, 0.6 * 8.0);  // never collapses
  EXPECT_LT(hi / lo, 1.5);   // stays in a tight band
}

TEST(CibVsStaleMimo, CrossoverUnderMotion) {
  // The Sec. 3.7 argument quantified: with fresh CSI, MIMO wins (8 vs ~7);
  // with second-old CSI under breathing, CIB's guaranteed peak beats the
  // decohered MIMO beam on average.
  Rng rng(7);
  MotionModel strong;
  strong.breathing_amplitude_m = 0.008;
  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  double cib_sum = 0.0, stale_sum = 0.0;
  int wins = 0, samples = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto tv = make_tv_channel(8, rng, strong);
    for (double t = 2.0; t < 5.0; t += 0.5) {
      const double cib = cib_peak_amplitude_at(tv, t, offsets);
      const double mimo = stale_mimo_amplitude(tv, t, 2.0);
      cib_sum += cib;
      stale_sum += mimo;
      wins += (cib > mimo);
      ++samples;
    }
  }
  EXPECT_GT(cib_sum, stale_sum);
  EXPECT_GT(wins, samples * 6 / 10);
}

}  // namespace
}  // namespace ivnet
