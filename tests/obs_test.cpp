// Tests for ivnet/obs: the metrics registry (counters, gauges, fixed-bucket
// histograms, P^2 streaming quantiles), the Chrome-trace tracer, and the
// null-sink hook facade. The concurrency tests are the TSan targets for
// the registry's thread-safety claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "ivnet/common/json.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/obs/trace.hpp"

namespace ivnet::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
}

TEST(HistogramTest, BucketAssignmentAndMinMax) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (le is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 1000.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, QuantileMatchesExactSortWithinBucketResolution) {
  // Uniform values over [0, 100) against a fine linear ladder: the
  // interpolated quantile must land within one bucket width of the exact
  // order statistic.
  Histogram h(Histogram::linear_bounds(0.0, 100.0, 200));  // 0.5-wide buckets
  std::vector<double> values;
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) /
           static_cast<double>(1ull << 53) * 100.0;
  };
  for (int i = 0; i < 5000; ++i) {
    const double v = next();
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.quantile(q), exact, 1.0)
        << "quantile " << q << " off by more than two bucket widths";
  }
}

TEST(HistogramTest, QuantileOfSingleObservation) {
  Histogram h(Histogram::default_bounds());
  h.observe(3.0);
  EXPECT_EQ(h.quantile(0.0), 3.0);
  EXPECT_EQ(h.quantile(0.5), 3.0);
  EXPECT_EQ(h.quantile(1.0), 3.0);
}

TEST(HistogramTest, ExponentialBoundsAre125Ladder) {
  const auto b = Histogram::exponential_bounds(1.0, 100.0);
  const std::vector<double> expected = {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
  EXPECT_EQ(b, expected);
}

TEST(StreamingQuantileTest, ExactBelowFiveObservations) {
  StreamingQuantile sq(0.5);
  sq.observe(5.0);
  sq.observe(1.0);
  sq.observe(3.0);
  EXPECT_EQ(sq.estimate(), 3.0);
}

TEST(StreamingQuantileTest, ExactForOneThroughFourObservations) {
  // Regression: below the five observations P^2 needs, estimate() must fall
  // back to the exact sorted-sample quantile — not read uninitialized
  // markers. Covers every count in 1..4 at several quantiles.
  {
    StreamingQuantile sq(0.9);
    sq.observe(7.5);
    EXPECT_EQ(sq.count(), 1u);
    EXPECT_EQ(sq.estimate(), 7.5);  // any quantile of one sample is itself
  }
  {
    StreamingQuantile lo(0.0), mid(0.5), hi(1.0);
    for (double x : {10.0, 2.0}) {
      lo.observe(x);
      mid.observe(x);
      hi.observe(x);
    }
    EXPECT_EQ(lo.estimate(), 2.0);
    EXPECT_EQ(mid.estimate(), 6.0);  // midpoint interpolation
    EXPECT_EQ(hi.estimate(), 10.0);
  }
  {
    StreamingQuantile sq(0.25);
    for (double x : {4.0, 1.0, 3.0}) sq.observe(x);
    // rank = 0.25 * (3 - 1) = 0.5 -> halfway between 1 and 3.
    EXPECT_EQ(sq.estimate(), 2.0);
  }
  {
    StreamingQuantile sq(0.5);
    for (double x : {9.0, 1.0, 5.0, 3.0}) sq.observe(x);
    EXPECT_EQ(sq.count(), 4u);
    // rank = 0.5 * 3 = 1.5 -> halfway between sorted[1]=3 and sorted[2]=5.
    EXPECT_EQ(sq.estimate(), 4.0);
  }
}

TEST(StreamingQuantileTest, P2TracksUniformMedian) {
  StreamingQuantile sq(0.5);
  std::uint64_t state = 99;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    sq.observe(static_cast<double>(state >> 11) /
               static_cast<double>(1ull << 53));
  }
  EXPECT_EQ(sq.count(), 20000u);
  EXPECT_NEAR(sq.estimate(), 0.5, 0.02);
}

TEST(StreamingQuantileTest, P2TracksSkewedP90) {
  // Exponential-ish skew via -log(u): p90 of Exp(1) is ln(10) ~ 2.3026.
  StreamingQuantile sq(0.9);
  std::uint64_t state = 7;
  for (int i = 0; i < 50000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double u = (static_cast<double>(state >> 11) + 1.0) /
                     (static_cast<double>(1ull << 53) + 2.0);
    sq.observe(-std::log(u));
  }
  EXPECT_NEAR(sq.estimate(), std::log(10.0), 0.1);
}

// Adversarial arrival orders for P^2: monotone ramps and a sawtooth are the
// classic worst cases (the marker heights are seeded from the first five
// observations, which these orderings make maximally unrepresentative).
// Against the exact sorted-sample quantile at n = 10^4 the estimate must
// stay within a few percent of the value range.
TEST(StreamingQuantileTest, P2SurvivesAdversarialOrderings) {
  constexpr int kN = 10000;
  struct Case {
    const char* name;
    double (*value)(int i);
  };
  const Case cases[] = {
      {"sorted_ascending", [](int i) { return static_cast<double>(i); }},
      {"sorted_descending",
       [](int i) { return static_cast<double>(kN - 1 - i); }},
      {"sawtooth",
       // 0, 100, 1, 101, 2, ... — alternates between two interleaved ramps.
       [](int i) {
         return static_cast<double>(i / 2 + (i % 2 == 0 ? 0 : 100));
       }},
  };
  for (const Case& c : cases) {
    for (const double q : {0.5, 0.9, 0.99}) {
      StreamingQuantile sq(q);
      std::vector<double> exact;
      exact.reserve(kN);
      for (int i = 0; i < kN; ++i) {
        const double v = c.value(i);
        sq.observe(v);
        exact.push_back(v);
      }
      std::sort(exact.begin(), exact.end());
      const double rank = q * static_cast<double>(kN - 1);
      const std::size_t lo = static_cast<std::size_t>(rank);
      const std::size_t hi = std::min<std::size_t>(lo + 1, kN - 1);
      const double frac = rank - static_cast<double>(lo);
      const double truth = exact[lo] * (1.0 - frac) + exact[hi] * frac;
      const double range = exact.back() - exact.front();
      EXPECT_NEAR(sq.estimate(), truth, 0.03 * range)
          << c.name << " q=" << q;
    }
  }
}

TEST(MetricsRegistryTest, SameNameSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 = reg.histogram("h", std::vector<double>{1.0, 2.0});
  Histogram& h2 = reg.histogram("h");  // later bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotSortedAndByteStable) {
  auto build = [] {
    MetricsRegistry reg;
    reg.counter("zeta").add(2);
    reg.counter("alpha").add(1);
    reg.gauge("mid").set(0.5);
    reg.histogram("lat", std::vector<double>{1.0, 10.0}).observe(3.0);
    return reg.snapshot_json();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b) << "snapshot must be byte-stable for equal contents";
  // Lexicographic counter order regardless of creation order.
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
  // Shape: three top-level sections.
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistryTest, EmptySnapshotShape) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistryTest, ConcurrentAccessIsSafe) {
  // TSan target: many threads hitting the same names (lookup + record) and
  // fresh names (map insertion) at once.
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").add();
        reg.histogram("shared_h").observe(static_cast<double>(i % 17));
        reg.gauge("g" + std::to_string(t)).set(static_cast<double>(i));
        if (i % 97 == 0) {
          reg.counter("c" + std::to_string(t) + "_" + std::to_string(i)).add();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("shared_h").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(HistogramTest, ViewIsInternallyConsistent) {
  Histogram h(Histogram::linear_bounds(0.0, 10.0, 10));
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i % 11));
  const Histogram::View view = h.view();
  EXPECT_EQ(view.count, 100u);
  std::uint64_t sum = 0;
  for (const std::uint64_t c : view.counts) sum += c;
  EXPECT_EQ(sum, view.count);
  EXPECT_EQ(Histogram::quantile_of(view, h.bounds(), 0.5), h.quantile(0.5));
}

TEST(HistogramTest, SnapshotWhileRecordingIsNeverTorn) {
  // TSan + consistency target for the service's always-on shape: workers
  // record into a histogram WHILE a snapshot is being taken. A snapshot
  // assembled from separate count()/min()/quantile() calls can interleave
  // with observes and report a count that disagrees with its bucket sums;
  // the single-lock View must never do that.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("live", Histogram::linear_bounds(0.0, 1.0, 8));
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, &stop, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h.observe(static_cast<double>((w + ++i) % 9) / 8.0);
      }
    });
  }

  for (int round = 0; round < 500; ++round) {
    const Histogram::View view = h.view();
    std::uint64_t sum = 0;
    for (const std::uint64_t c : view.counts) sum += c;
    ASSERT_EQ(sum, view.count)
        << "round " << round << ": bucket sums tore away from the count";
    if (view.count > 0) {
      EXPECT_LE(view.min, view.max);
      const double p99 = Histogram::quantile_of(view, h.bounds(), 0.99);
      EXPECT_GE(p99, view.min);
      EXPECT_LE(p99, view.max);
    }
    // The full JSON path too: it must assemble each histogram from one view.
    const std::string snapshot = reg.snapshot_json();
    const auto count = static_cast<std::uint64_t>(
        json_find_number(snapshot, "count", -1.0));
    EXPECT_GE(count, view.count) << "count can only grow";
  }
  stop.store(true);
  for (auto& t : writers) t.join();

  const Histogram::View final_view = h.view();
  std::uint64_t final_sum = 0;
  for (const std::uint64_t c : final_view.counts) final_sum += c;
  EXPECT_EQ(final_sum, final_view.count);
}

TEST(NullSink, HooksAreNoOpsWithoutInstall) {
  install_null();
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(tracer(), nullptr);
  // Must not crash or allocate registries behind the scenes.
  count("nope");
  gauge_set("nope", 1.0);
  observe("nope", 1.0);
  sim_span("nope", "t", 0.0, 1.0);
  sim_instant("nope", "t", 0.0);
  { ScopedSpan span("nope", "t"); }
  { ScopedTrack track(7); }
  EXPECT_EQ(metrics(), nullptr);
}

TEST(NullSink, InstallRoutesAndUninstallStops) {
  MetricsRegistry reg;
  install(Sink{.metrics = &reg});
  count("hits", 2);
  install_null();
  count("hits", 100);  // dropped
  EXPECT_EQ(reg.counter("hits").value(), 2u);
}

// Pins the install()/hook publication contract: installing and uninstalling
// the sink while worker threads hammer the hooks must be race-free (release
// store on install, acquire load in every hook). Run under TSan this fails
// on the old relaxed-store implementation; under any build it checks that
// no hit is lost while the sink is installed and none lands after.
TEST(NullSink, LateInstallWhileHooksRunIsRaceFree) {
  MetricsRegistry reg;
  install_null();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> attempted{0};
  std::vector<std::thread> hammers;
  for (int i = 0; i < 4; ++i) {
    hammers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        count("late.hits");
        observe("late.lat", 0.5);
        attempted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Flip the sink in and out repeatedly underneath the hammering threads.
  for (int cycle = 0; cycle < 200; ++cycle) {
    install(Sink{.metrics = &reg});
    install(Sink{});
  }
  install(Sink{.metrics = &reg});
  // Let some traffic land with the sink durably installed.
  const std::uint64_t before = reg.counter("late.hits").value();
  while (reg.counter("late.hits").value() < before + 100) {
    std::this_thread::yield();
  }
  install_null();
  stop.store(true);
  for (std::thread& t : hammers) t.join();
  const std::uint64_t landed = reg.counter("late.hits").value();
  EXPECT_GE(landed, before + 100);
  EXPECT_LE(landed, attempted.load());
  // Nothing arrives once the sink is gone and the workers have stopped.
  EXPECT_EQ(reg.counter("late.hits").value(), landed);
}

TEST(TracerTest, WallModeRecordsWallDropsSim) {
  Tracer t(TraceClock::kWall);
  t.wall_span("work", "cat", 10.0, 5.0);
  t.wall_instant("mark", "cat", 12.0);
  t.sim_span("ignored", "cat", 0.0, 1.0);
  EXPECT_EQ(t.event_count(), 2u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_EQ(json.find("ignored"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, SimModeRecordsSimDropsWall) {
  Tracer t(TraceClock::kSim);
  install(Sink{.tracer = &t});
  {
    ScopedTrack track(3);
    sim_span("charge", "link", 0.0, 0.5);
    sim_instant("retry", "link", 0.6);
  }
  { ScopedSpan span("wall_only", "cat"); }  // dropped: wrong clock
  install_null();
  EXPECT_EQ(t.event_count(), 2u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_EQ(json.find("wall_only"), std::string::npos);
  // Seconds in, microseconds out. 600000 prints as 6e+05: the writer's
  // shortest-round-trip formatter picks scientific when it is shorter.
  EXPECT_NE(json.find("\"ts\":6e+05"), std::string::npos);
}

TEST(TracerTest, SimExportOrdersByTrackThenSeq) {
  // Emit on tracks out of order; export must sort (track, seq).
  Tracer t(TraceClock::kSim);
  install(Sink{.tracer = &t});
  {
    ScopedTrack track(2);
    sim_instant("b0", "x", 5.0);
  }
  {
    ScopedTrack track(1);
    sim_instant("a0", "x", 9.0);
    sim_instant("a1", "x", 1.0);  // later seq, earlier sim time: seq wins
  }
  install_null();
  const std::string json = t.to_json();
  const auto a0 = json.find("a0");
  const auto a1 = json.find("a1");
  const auto b0 = json.find("b0");
  ASSERT_NE(a0, std::string::npos);
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(b0, std::string::npos);
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, b0);
}

TEST(TracerTest, ScopedTrackRestoresOuterTrack) {
  Tracer t(TraceClock::kSim);
  install(Sink{.tracer = &t});
  {
    ScopedTrack outer(10);
    sim_instant("o0", "x", 0.0);
    {
      ScopedTrack inner(20);
      sim_instant("i0", "x", 0.0);
    }
    sim_instant("o1", "x", 0.0);  // back on track 10, seq continues
  }
  install_null();
  const std::string json = t.to_json();
  // Track 10 events sort before track 20, o1 right after o0.
  const auto o0 = json.find("o0");
  const auto o1 = json.find("o1");
  const auto i0 = json.find("i0");
  EXPECT_LT(o0, o1);
  EXPECT_LT(o1, i0);
}

TEST(TracerTest, WallSpanMeasuresNonNegativeDuration) {
  Tracer t(TraceClock::kWall);
  install(Sink{.tracer = &t});
  { ScopedSpan span("tick", "test"); }
  install_null();
  ASSERT_EQ(t.event_count(), 1u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
}

}  // namespace
}  // namespace ivnet::obs
