// Tests for ivnet/common/parallel: the shared thread pool, the chunked
// helpers, and the counter-based Rng::stream derivation that together form
// the deterministic parallel-execution contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"

namespace ivnet {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(ParallelTest, ThreadCountIsPositive) {
  EXPECT_GE(parallel_thread_count(), 1u);
}

TEST_F(ParallelTest, OverrideControlsPoolSize) {
  set_parallel_threads(3);
  EXPECT_EQ(parallel_thread_count(), 3u);
  set_parallel_threads(0);
  EXPECT_GE(parallel_thread_count(), 1u);
}

TEST_F(ParallelTest, ParseThreadCount) {
  EXPECT_EQ(parse_thread_count(nullptr), 0u);
  EXPECT_EQ(parse_thread_count(""), 0u);
  EXPECT_EQ(parse_thread_count("0"), 0u);
  EXPECT_EQ(parse_thread_count("8"), 8u);
  EXPECT_EQ(parse_thread_count("16"), 16u);
  EXPECT_EQ(parse_thread_count("not-a-number"), 0u);
  EXPECT_EQ(parse_thread_count("4x"), 0u);
  EXPECT_EQ(parse_thread_count("99999999"), 0u);  // absurd -> automatic
}

TEST_F(ParallelTest, ForVisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_parallel_threads(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    parallel_for(kN, [&](std::size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " at " << threads;
    }
  }
}

TEST_F(ParallelTest, ForHandlesEmptyAndTinyRanges) {
  set_parallel_threads(4);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, MapPreservesIndexOrder) {
  set_parallel_threads(8);
  const auto out =
      parallel_map<std::size_t>(500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_F(ParallelTest, ReduceIsBitwiseIdenticalAcrossPoolSizes) {
  // A floating-point sum whose value depends on association order: the
  // fixed-grain chunking must make it identical for every pool size.
  auto run = [] {
    return parallel_reduce(
        10000, 0.0, [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  set_parallel_threads(1);
  const double serial = run();
  for (std::size_t threads : {2u, 3u, 8u}) {
    set_parallel_threads(threads);
    const double parallel = run();
    EXPECT_EQ(serial, parallel) << "pool size " << threads;
  }
}

TEST_F(ParallelTest, NestedCallsRunInline) {
  set_parallel_threads(4);
  std::vector<std::atomic<int>> visits(64 * 64);
  parallel_for(64, [&](std::size_t outer) {
    parallel_for(64, [&](std::size_t inner) {
      visits[outer * 64 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(RngStream, SameKeySameSequence) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStream, OrderIndependent) {
  // Deriving streams in any order, interleaved with any other derivations,
  // yields the same values: streams are pure functions of (seed, index).
  Rng early = Rng::stream(9, 3);
  const std::uint64_t early_first = early();
  Rng unrelated_a = Rng::stream(9, 1);
  Rng unrelated_b = Rng::stream(1234, 3);
  (void)unrelated_a();
  (void)unrelated_b();
  Rng late = Rng::stream(9, 3);
  EXPECT_EQ(late(), early_first);
}

TEST(RngStream, DistinctIndicesAreDecorrelated) {
  // Non-overlap proxy: the first few draws of many consecutive streams are
  // all distinct (a shared or shifted stream would collide immediately).
  std::set<std::uint64_t> seen;
  constexpr std::uint64_t kStreams = 1000;
  for (std::uint64_t k = 0; k < kStreams; ++k) {
    Rng r = Rng::stream(77, k);
    for (int draws = 0; draws < 4; ++draws) seen.insert(r());
  }
  EXPECT_EQ(seen.size(), kStreams * 4);
}

TEST(RngStream, DistinctSeedsDiffer) {
  Rng a = Rng::stream(1, 0);
  Rng b = Rng::stream(2, 0);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (a() != b());
  EXPECT_TRUE(any_diff);
}

TEST(RngStream, UniformStaysInRange) {
  Rng r = Rng::stream(5, 11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace ivnet
