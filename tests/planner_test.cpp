// Tests for ivnet/sim/planner: the deployment-sizing API.
#include <gtest/gtest.h>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/planner.hpp"

namespace ivnet {
namespace {

DeploymentRequirements easy_requirements() {
  DeploymentRequirements req;
  req.min_power_up_probability = 0.8;
  req.burst_energy_j = 3e-6;
  req.min_reads_per_minute = 1.0;
  req.skin_distance_m = 0.5;
  req.tx_duty_cycle = 0.1;
  return req;
}

TEST(Planner, EasyScenarioNeedsFewAntennas) {
  Rng rng(1);
  const auto plan = plan_deployment(air_scenario(2.0), standard_tag(),
                                    easy_requirements(), rng);
  ASSERT_TRUE(plan.feasible) << plan.limiting_factor;
  EXPECT_LE(plan.antennas, 3u);
  EXPECT_GE(plan.power_up_probability, 0.8);
  EXPECT_GE(plan.expected_reads_per_minute, 1.0);
  EXPECT_TRUE(plan.exposure.mpe_ok);
}

TEST(Planner, DeeperNeedsMoreAntennas) {
  Rng rng(2);
  const auto shallow = plan_deployment(
      water_tank_scenario(0.05, calib::kRangeSetupStandoffM), standard_tag(),
      easy_requirements(), rng);
  const auto deep = plan_deployment(
      water_tank_scenario(0.15, calib::kRangeSetupStandoffM), standard_tag(),
      easy_requirements(), rng);
  ASSERT_TRUE(shallow.feasible) << shallow.limiting_factor;
  ASSERT_TRUE(deep.feasible) << deep.limiting_factor;
  EXPECT_GT(deep.antennas, shallow.antennas);
}

TEST(Planner, ImpossibleDepthReportsPowerUpLimit) {
  Rng rng(3);
  const auto plan = plan_deployment(
      water_tank_scenario(0.40, calib::kRangeSetupStandoffM), standard_tag(),
      easy_requirements(), rng);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.limiting_factor.find("power-up"), std::string::npos);
}

TEST(Planner, AntennaBudgetRespected) {
  Rng rng(4);
  DeploymentRequirements req = easy_requirements();
  req.max_antennas = 2;
  const auto plan = plan_deployment(
      water_tank_scenario(0.15, calib::kRangeSetupStandoffM), standard_tag(),
      req, rng);
  EXPECT_FALSE(plan.feasible);  // 0.15 m needs more than 2 antennas
}

TEST(Planner, MiniatureTagHarderThanStandard) {
  Rng rng(5);
  const auto scen = water_tank_scenario(0.05, calib::kRangeSetupStandoffM);
  const auto std_plan =
      plan_deployment(scen, standard_tag(), easy_requirements(), rng);
  const auto mini_plan =
      plan_deployment(scen, miniature_tag(), easy_requirements(), rng);
  ASSERT_TRUE(std_plan.feasible) << std_plan.limiting_factor;
  ASSERT_TRUE(mini_plan.feasible) << mini_plan.limiting_factor;
  EXPECT_GT(mini_plan.antennas, std_plan.antennas);
}

TEST(Planner, CadenceRequirementCanBind) {
  Rng rng(6);
  DeploymentRequirements req = easy_requirements();
  req.burst_energy_j = 1e-3;        // absurdly hungry sensor
  req.min_reads_per_minute = 30.0;  // and a fast cadence
  const auto plan = plan_deployment(
      water_tank_scenario(0.12, calib::kRangeSetupStandoffM), standard_tag(),
      req, rng);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.limiting_factor.find("cadence"), std::string::npos);
}

TEST(Planner, DescribeMentionsKeyNumbers) {
  Rng rng(7);
  const auto plan = plan_deployment(air_scenario(2.0), standard_tag(),
                                    easy_requirements(), rng);
  const auto text = describe(plan);
  EXPECT_NE(text.find("antennas"), std::string::npos);
  EXPECT_NE(text.find("reads/min"), std::string::npos);

  DeploymentPlan bad;
  bad.limiting_factor = "power-up: too deep";
  EXPECT_NE(describe(bad).find("infeasible"), std::string::npos);
}

}  // namespace
}  // namespace ivnet
