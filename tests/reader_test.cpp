// Tests for ivnet/reader: out-of-band decode, self-jamming saturation,
// SAW rejection, and coherent averaging (Sec. 4 / Sec. 5(b)).
#include <gtest/gtest.h>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/reader/oob_reader.hpp"

namespace ivnet {
namespace {

gen2::Bits test_bits() {
  return {true, false, true, true, false, false, true, false,
          true, true, false, true, false, false, true, true};
}

std::vector<double> test_reflection() {
  auto samples = gen2::fm0_modulate(test_bits(), 40e3, 800e3);
  for (auto& s : samples) s *= 0.4;  // backscatter depth
  return samples;
}

TEST(OobReader, DecodesCleanStrongBackscatter) {
  const OobReader reader(OobReaderConfig{});
  Rng rng(1);
  const auto report = reader.decode(test_reflection(), /*round_trip=*/1e-3,
                                    /*jam=*/0.0, 40e3, 16, rng);
  EXPECT_TRUE(report.success);
  EXPECT_FALSE(report.saturated);
  EXPECT_GT(report.preamble_correlation, 0.95);
  EXPECT_EQ(report.bits, test_bits());
  EXPECT_GT(report.snr_db, 30.0);
}

TEST(OobReader, FailsOnVanishingSignal) {
  const OobReader reader(OobReaderConfig{});
  Rng rng(2);
  const auto report = reader.decode(test_reflection(), /*round_trip=*/1e-9,
                                    /*jam=*/0.0, 40e3, 16, rng);
  EXPECT_FALSE(report.success);
  EXPECT_LT(report.preamble_correlation, 0.8);
}

TEST(OobReader, InBandJammingSaturatesWithoutSawRejection) {
  // Ablation: an IN-band reader (no SAW separation) sees the full CIB power
  // -> front end saturates and nothing decodes (the Sec. 4 problem).
  OobReaderConfig cfg;
  cfg.saw_rejection_db = 0.0;
  const OobReader reader(cfg);
  Rng rng(3);
  const double jam_w = 0.1;  // 20 dBm of CIB leakage at the receiver
  const auto report =
      reader.decode(test_reflection(), 1e-3, jam_w, 40e3, 16, rng);
  EXPECT_TRUE(report.saturated);
  EXPECT_FALSE(report.success);
}

TEST(OobReader, SawRejectionRestoresDecode) {
  OobReaderConfig cfg;
  cfg.saw_rejection_db = 50.0;
  const OobReader reader(cfg);
  Rng rng(4);
  const auto report =
      reader.decode(test_reflection(), 1e-3, 0.1, 40e3, 16, rng);
  EXPECT_FALSE(report.saturated);
  EXPECT_TRUE(report.success);
}

TEST(OobReader, JamRaisesNoiseFloor) {
  OobReaderConfig cfg;
  const OobReader reader(cfg);
  Rng rng(5);
  const auto quiet = reader.decode(test_reflection(), 1e-5, 0.0, 40e3, 16, rng);
  const auto jammed =
      reader.decode(test_reflection(), 1e-5, 0.1, 40e3, 16, rng);
  EXPECT_GT(quiet.snr_db, jammed.snr_db + 10.0);
}

TEST(OobReader, AveragingRecoversWeakSignal) {
  // Sec. 5(b): "the reader averages responses over 1-second intervals ...
  // to boost the SNR". Find a round-trip gain that fails with 1 period and
  // verify many periods recover it.
  OobReaderConfig one;
  one.averaging_periods = 1;
  OobReaderConfig many = one;
  many.averaging_periods = 64;
  Rng rng_a(6), rng_b(6);
  const double rt = 2.2e-7;
  const auto weak = OobReader(one).decode(test_reflection(), rt, 0.0, 40e3,
                                          16, rng_a);
  const auto averaged = OobReader(many).decode(test_reflection(), rt, 0.0,
                                               40e3, 16, rng_b);
  EXPECT_FALSE(weak.success);
  EXPECT_TRUE(averaged.success);
  EXPECT_NEAR(averaged.snr_db - weak.snr_db, to_db(64.0), 1.0);
  EXPECT_EQ(averaged.bits, test_bits());
}

TEST(OobReader, CorrelationCriterionHonored) {
  // Raising the decode criterion above what the SNR supports must flip the
  // decision even when bits would slice correctly.
  OobReaderConfig strict;
  strict.min_correlation = 0.995;
  const OobReader reader(strict);
  Rng rng(7);
  const double rt = 6e-7;  // borderline SNR
  const auto report = reader.decode(test_reflection(), rt, 0.0, 40e3, 16, rng);
  if (!report.success) {
    EXPECT_LT(report.preamble_correlation, 0.995);
  }
}

TEST(OobReader, ReportsPowerNumbers) {
  const OobReader reader(OobReaderConfig{});
  Rng rng(8);
  const auto report =
      reader.decode(test_reflection(), 1e-3, 1e-6, 40e3, 16, rng);
  EXPECT_GT(report.signal_power_dbm, -100.0);
  EXPECT_LT(report.signal_power_dbm, 30.0);
  EXPECT_NEAR(report.jam_power_dbm, watts_to_dbm(1e-6) - 50.0, 0.5);
  EXPECT_FALSE(report.averaged_signal.empty());
}

// Property sweep: SNR improves ~linearly (in dB) with log2 of averaging.
class AveragingGain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AveragingGain, SnrScalesWithPeriods) {
  OobReaderConfig cfg;
  cfg.averaging_periods = GetParam();
  const OobReader reader(cfg);
  Rng rng(9);
  const auto report =
      reader.decode(test_reflection(), 1e-6, 0.0, 40e3, 16, rng);
  OobReaderConfig base_cfg;
  base_cfg.averaging_periods = 1;
  Rng rng2(9);
  const auto base =
      OobReader(base_cfg).decode(test_reflection(), 1e-6, 0.0, 40e3, 16, rng2);
  EXPECT_NEAR(report.snr_db - base.snr_db,
              to_db(static_cast<double>(GetParam())), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Periods, AveragingGain,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

}  // namespace
}  // namespace ivnet
