// Tests for ivnet/rf: antennas (Eq. 3 aperture), propagation (Eq. 2), and
// the blind channel models (Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/rf/antenna.hpp"
#include "ivnet/rf/channel.hpp"
#include "ivnet/rf/propagation.hpp"

namespace ivnet {
namespace {

constexpr double kF = 915e6;

TEST(Antenna, GainConversions) {
  const Antenna a("test", 7.0);
  EXPECT_NEAR(a.gain_linear(), 5.01, 0.01);
}

TEST(Antenna, ApertureFollowsWavelengthSquared) {
  const Antenna iso("iso", 0.0);
  const double a_air = iso.effective_aperture_m2(kF, media::air());
  EXPECT_NEAR(a_air, wavelength(kF) * wavelength(kF) / (4.0 * kPi), 1e-9);
  // In water the wavelength shrinks by sqrt(78), aperture by 78.
  const double a_water = iso.effective_aperture_m2(kF, media::water());
  EXPECT_NEAR(a_air / a_water, 78.0, 0.5);
}

TEST(Antenna, ApertureCapBinds) {
  const Antenna capped("capped", 10.0, 1e-5);
  EXPECT_DOUBLE_EQ(capped.effective_aperture_m2(kF, media::air()), 1e-5);
}

TEST(Antenna, MiniatureApertureFarSmallerThanStandard) {
  const auto std_ant = antennas::standard_tag_antenna();
  const auto mini_ant = antennas::miniature_tag_antenna();
  EXPECT_GT(std_ant.effective_aperture_m2(kF, media::air()) /
                mini_ant.effective_aperture_m2(kF, media::air()),
            20.0);
}

TEST(Antenna, OrientationPatternBoundsAndShape) {
  const Antenna a("test", 2.0);
  EXPECT_NEAR(a.orientation_gain(0.0), 1.0, 1e-12);
  EXPECT_GT(a.orientation_gain(kPi / 2.0), 0.0);  // imperfect null
  EXPECT_LT(a.orientation_gain(kPi / 2.0), 0.05);
  EXPECT_GT(a.orientation_gain(0.3), a.orientation_gain(1.2));
}

TEST(Antenna, PolarizationFactorValidated) {
  Antenna a("test", 0.0);
  a.set_polarization_factor(0.5);
  EXPECT_DOUBLE_EQ(a.polarization_factor(), 0.5);
}

TEST(Propagation, AirFieldInverseDistance) {
  const double e1 = air_field_amplitude(1.0, 0.0, 1.0);
  const double e2 = air_field_amplitude(1.0, 0.0, 2.0);
  EXPECT_NEAR(e1 / e2, 2.0, 1e-12);
  // E = sqrt(60 P G)/r: 1 W isotropic at 1 m -> sqrt(60) V/m.
  EXPECT_NEAR(e1, std::sqrt(60.0), 1e-12);
}

TEST(Propagation, LinkPowerGainQuadraticInAirDistance) {
  const LinkBudget link(antennas::mt242025(), antennas::standard_tag_antenna(),
                        LayeredMedium{});
  const double g1 = link.power_gain({.air_distance_m = 1.0}, kF);
  const double g4 = link.power_gain({.air_distance_m = 2.0}, kF);
  EXPECT_NEAR(g1 / g4, 4.0, 1e-9);
}

TEST(Propagation, LinkMatchesFriisForIsotropicPair) {
  // With G_t = G_r = 0 dBi and no medium, the link should reduce to Friis:
  // P_r/P_t = (lambda / (4 pi r))^2.
  Antenna tx("tx", 0.0), rx("rx", 0.0);
  const LinkBudget link(tx, rx, LayeredMedium{});
  const double r = 3.0;
  const double friis = std::pow(wavelength(kF) / (4.0 * kPi * r), 2.0);
  EXPECT_NEAR(link.power_gain({.air_distance_m = r}, kF) / friis, 1.0, 0.01);
}

TEST(Propagation, DepthAddsExponentialLoss) {
  LayeredMedium stack;
  stack.add_layer(media::muscle(), 0.10);
  const LinkBudget link(antennas::mt242025(), antennas::standard_tag_antenna(),
                        stack);
  const LinkGeometry shallow{.air_distance_m = 0.5, .depth_m = 0.02};
  const LinkGeometry deep{.air_distance_m = 0.5, .depth_m = 0.05};
  const double ratio_db = to_db(link.power_gain(shallow, kF) /
                                link.power_gain(deep, kF));
  // 3 cm of muscle at ~2 dB/cm.
  EXPECT_NEAR(ratio_db, 3.0 * media::muscle().power_loss_db_per_cm(kF), 0.5);
}

TEST(Propagation, VoltageScalesWithSqrtResistance) {
  const LinkBudget link(antennas::mt242025(), antennas::standard_tag_antenna(),
                        LayeredMedium{});
  const LinkGeometry geom{.air_distance_m = 2.0};
  const double v50 = link.voltage_per_sqrt_watt(geom, kF, 50.0);
  const double v200 = link.voltage_per_sqrt_watt(geom, kF, 200.0);
  EXPECT_NEAR(v200 / v50, 2.0, 1e-9);
}

TEST(Channel, BlindChannelHasRequestedAmplitudes) {
  Rng rng(1);
  const std::vector<double> amps = {1.0, 2.0, 0.5};
  const auto ch = make_blind_channel(amps, rng);
  ASSERT_EQ(ch.num_tx(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(ch.gain(i, 0.0)), amps[i], 1e-12);
  }
}

TEST(Channel, ResamplePhasesChangesPhaseNotMagnitude) {
  Rng rng(2);
  const std::vector<double> amps = {1.0, 1.0};
  auto ch = make_blind_channel(amps, rng);
  const auto before = ch.gain(0, 0.0);
  ch.resample_phases(rng);
  const auto after = ch.gain(0, 0.0);
  EXPECT_NEAR(std::abs(before), std::abs(after), 1e-12);
  EXPECT_GT(std::abs(std::arg(before) - std::arg(after)), 1e-6);
}

TEST(Channel, MultipathConservesExpectedPower) {
  Rng rng(3);
  const std::vector<double> amps = {1.0};
  double sum = 0.0;
  const int trials = 4000;
  for (int k = 0; k < trials; ++k) {
    const auto ch = make_multipath_channel(amps, 8, 60e-9, rng);
    sum += ch.power_gain(0, 0.0);
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.05);
}

TEST(Channel, MultipathIsFrequencySelective) {
  Rng rng(4);
  const std::vector<double> amps = {1.0};
  const auto ch = make_multipath_channel(amps, 8, 100e-9, rng);
  // Over a 137 Hz CIB offset the channel is flat...
  EXPECT_NEAR(std::abs(ch.gain(0, 0.0)), std::abs(ch.gain(0, 137.0)), 1e-4);
  // ...but over 35 MHz (the out-of-band reader separation) it can differ.
  bool differs = false;
  Rng rng2(5);
  for (int k = 0; k < 20; ++k) {
    const auto c = make_multipath_channel(amps, 8, 100e-9, rng2);
    if (std::abs(std::abs(c.gain(0, 0.0)) - std::abs(c.gain(0, 35e6))) > 0.05) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Channel, ReceiveComposesGains) {
  Rng rng(6);
  const std::vector<double> amps = {1.0, 1.0};
  const auto ch = make_blind_channel(amps, rng);
  std::vector<Waveform> waves;
  waves.push_back(make_tone(0.0, 0.0, 64, 1000.0));
  waves.push_back(make_tone(0.0, 0.0, 64, 1000.0));
  const std::vector<double> offsets = {0.0, 0.0};
  const auto rx = receive(ch, waves, offsets);
  const cplx expect = ch.gain(0, 0.0) + ch.gain(1, 0.0);
  EXPECT_NEAR(std::abs(rx.samples[0] - expect), 0.0, 1e-9);
}

// Property: the blind channel's per-antenna phase is uniform — the empirical
// mean of e^{j beta} over many draws should vanish.
class BlindPhaseUniform : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlindPhaseUniform, MeanPhasorVanishes) {
  Rng rng(GetParam());
  const std::vector<double> amps = {1.0};
  cplx mean{0.0, 0.0};
  const int n = 3000;
  for (int k = 0; k < n; ++k) {
    mean += make_blind_channel(amps, rng).gain(0, 0.0);
  }
  EXPECT_LT(std::abs(mean) / n, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlindPhaseUniform,
                         ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace ivnet
