// Tests for ivnet/sim/safety: FCC MPE / SAR / EIRP compliance of the CIB
// transmitter (the Sec. 1 / Sec. 7 safety claims).
#include <gtest/gtest.h>

#include "ivnet/common/units.hpp"
#include "ivnet/sim/safety.hpp"

namespace ivnet {
namespace {

TEST(Limits, Mpe915MHz) {
  // f/1500 mW/cm^2 at 915 MHz -> 0.61 mW/cm^2 = 6.1 W/m^2.
  const auto limits = fcc_limits(915e6);
  EXPECT_NEAR(limits.mpe_w_per_m2, 6.1, 0.01);
  EXPECT_DOUBLE_EQ(limits.sar_limit_w_per_kg, 1.6);
  EXPECT_DOUBLE_EQ(limits.eirp_limit_dbm, 36.0);
}

TEST(Limits, PlateausOutsideBand) {
  EXPECT_NEAR(fcc_limits(100e6).mpe_w_per_m2, 2.0, 1e-9);
  EXPECT_NEAR(fcc_limits(2.4e9).mpe_w_per_m2, 10.0, 1e-9);
}

TEST(Exposure, PaperPrototypeCompliantAtBenchDistance) {
  // 8 antennas x 1 W through 7 dBi at >= 1 m from skin, with the CIB duty
  // cycle (the transmitter charges, then idles between query rounds).
  const auto report = assess_exposure(8, 1.0, 7.0, 1.0, media::skin(), 915e6,
                                      /*tx_duty_cycle=*/0.1);
  EXPECT_TRUE(report.mpe_ok);
  EXPECT_TRUE(report.sar_ok);
  // 30 dBm + 7 dBi = 37 dBm slightly exceeds the Part 15 EIRP ceiling —
  // exactly why deployments trim either power or antenna gain.
  EXPECT_FALSE(report.eirp_ok);
  EXPECT_NEAR(report.eirp_dbm, 37.0, 0.01);
}

TEST(Exposure, AverageScalesLinearlyInN) {
  const auto one = assess_exposure(1, 1.0, 7.0, 0.5, media::skin(), 915e6);
  const auto ten = assess_exposure(10, 1.0, 7.0, 0.5, media::skin(), 915e6);
  EXPECT_NEAR(ten.avg_density_w_per_m2 / one.avg_density_w_per_m2, 10.0,
              1e-9);
  // Peak scales as N^2 (the CIB alignment spike).
  EXPECT_NEAR(ten.peak_density_w_per_m2 / one.peak_density_w_per_m2, 100.0,
              1e-9);
}

TEST(Exposure, DutyCyclingRestoresCompliance) {
  // Continuous illumination at close range violates MPE; duty cycling (the
  // paper's "intrinsic duty-cycled operation") brings it back under.
  const auto continuous =
      assess_exposure(10, 1.0, 7.0, 0.5, media::skin(), 915e6, 1.0);
  const auto duty_cycled =
      assess_exposure(10, 1.0, 7.0, 0.5, media::skin(), 915e6, 0.02);
  EXPECT_FALSE(continuous.mpe_ok);
  EXPECT_TRUE(duty_cycled.mpe_ok);
}

TEST(Exposure, SarGrowsWithTissueConductivity) {
  const auto muscle = assess_exposure(8, 1.0, 7.0, 1.0, media::muscle(),
                                      915e6, 0.1);
  const auto fat =
      assess_exposure(8, 1.0, 7.0, 1.0, media::fat(), 915e6, 0.1);
  EXPECT_GT(muscle.surface_sar_w_per_kg, fat.surface_sar_w_per_kg);
}

TEST(Exposure, DensityFallsWithDistanceSquared) {
  const auto near = assess_exposure(8, 1.0, 7.0, 0.5, media::skin(), 915e6);
  const auto far = assess_exposure(8, 1.0, 7.0, 1.0, media::skin(), 915e6);
  EXPECT_NEAR(near.avg_density_w_per_m2 / far.avg_density_w_per_m2, 4.0,
              1e-9);
}

TEST(MaxPower, ConsistentWithAssessment) {
  const double p_max = max_compliant_power_w(8, 7.0, 0.6, 915e6, 0.5);
  ASSERT_GT(p_max, 0.0);
  const auto at_limit =
      assess_exposure(8, p_max * 0.999, 7.0, 0.6, media::skin(), 915e6, 0.5);
  const auto above_limit =
      assess_exposure(8, p_max * 1.2, 7.0, 0.6, media::skin(), 915e6, 0.5);
  EXPECT_TRUE(at_limit.mpe_ok);
  // 1.2x the bound must violate either MPE or EIRP.
  EXPECT_FALSE(above_limit.mpe_ok && above_limit.eirp_ok);
}

TEST(MaxPower, EirpCeilingBindsFarAway) {
  // Far from the body the MPE is easy; the Part 15 EIRP cap binds instead.
  const double p_max = max_compliant_power_w(4, 7.0, 10.0, 915e6, 0.05);
  EXPECT_NEAR(watts_to_dbm(p_max) + 7.0, 36.0, 0.1);
}

// Property sweep: duty cycle scales the average density linearly.
class DutyScaling : public ::testing::TestWithParam<double> {};

TEST_P(DutyScaling, LinearInDuty) {
  const double duty = GetParam();
  const auto full = assess_exposure(8, 1.0, 7.0, 1.0, media::skin(), 915e6,
                                    1.0);
  const auto scaled = assess_exposure(8, 1.0, 7.0, 1.0, media::skin(), 915e6,
                                      duty);
  EXPECT_NEAR(scaled.avg_density_w_per_m2,
              full.avg_density_w_per_m2 * duty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Duties, DutyScaling,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.9));

}  // namespace
}  // namespace ivnet
