// Tests for ivnet/sdr: PLL phase model (Eq. 5's theta_i), clock distribution
// (Octoclock vs free-running), PA compression, and the synchronized radio
// array.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/sdr/clock.hpp"
#include "ivnet/sdr/pa.hpp"
#include "ivnet/sdr/pll.hpp"
#include "ivnet/sdr/radio.hpp"
#include "ivnet/signal/envelope.hpp"

namespace ivnet {
namespace {

TEST(Pll, RandomInitialPhaseInRange) {
  Rng rng(1);
  for (int k = 0; k < 100; ++k) {
    const Pll pll(915e6, 0.0, rng);
    EXPECT_GE(pll.initial_phase(), 0.0);
    EXPECT_LT(pll.initial_phase(), kTwoPi);
  }
}

TEST(Pll, PhaseAdvancesAtActualFrequency) {
  Rng rng(2);
  const Pll pll(1000.0, 0.0, rng);
  const double p0 = pll.phase_at(0.0);
  const double p1 = pll.phase_at(0.25e-3);  // quarter cycle
  EXPECT_NEAR(wrap_phase(p1 - p0), kPi / 2.0, 1e-9);
}

TEST(Pll, PpmErrorShiftsFrequency) {
  Rng rng(3);
  const Pll pll(915e6, 2.0, rng);  // +2 ppm
  EXPECT_NEAR(pll.actual_hz() - 915e6, 1830.0, 1e-6);
}

TEST(Pll, RelockChangesPhase) {
  Rng rng(4);
  Pll pll(915e6, 0.0, rng);
  const double before = pll.initial_phase();
  pll.relock(rng);
  EXPECT_NE(before, pll.initial_phase());
}

TEST(Clock, OctoclockTightAlignment) {
  Rng rng(5);
  const auto clocks = ClockDistribution::octoclock().distribute(8, rng);
  ASSERT_EQ(clocks.size(), 8u);
  for (const auto& c : clocks) {
    EXPECT_LT(std::abs(c.start_offset_s), 50e-9);
    EXPECT_DOUBLE_EQ(c.ppm_error, 0.0);
  }
}

TEST(Clock, FreeRunningIsWorse) {
  Rng rng(6);
  const auto free = ClockDistribution::free_running().distribute(64, rng);
  double max_skew = 0.0, max_ppm = 0.0;
  for (const auto& c : free) {
    max_skew = std::max(max_skew, std::abs(c.start_offset_s));
    max_ppm = std::max(max_ppm, std::abs(c.ppm_error));
  }
  EXPECT_GT(max_skew, 1e-6);
  EXPECT_GT(max_ppm, 0.5);
}

TEST(Pa, LinearWellBelowCompression) {
  const PowerAmplifier pa(0.0, 30.0);  // unity gain, 30 dBm P1dB
  const double in = std::sqrt(dbm_to_watts(0.0));  // 0 dBm drive
  EXPECT_NEAR(pa.output_amplitude(in) / in, 1.0, 0.01);
}

TEST(Pa, ExactlyOneDbCompressionAtP1db) {
  const PowerAmplifier pa(0.0, 30.0);
  // Drive at which the LINEAR output would be P1dB + 1 dB; actual output
  // must be P1dB exactly (the definition of the 1-dB compression point).
  const double in = std::sqrt(dbm_to_watts(31.0));
  const double out_dbm = watts_to_dbm(std::pow(pa.output_amplitude(in), 2.0));
  EXPECT_NEAR(out_dbm, 30.0, 0.05);
}

TEST(Pa, HardSaturationBound) {
  const PowerAmplifier pa(0.0, 30.0);
  const double out = pa.output_amplitude(100.0);
  EXPECT_LE(out, pa.saturation_amplitude() * 1.0001);
}

TEST(Pa, GainApplied) {
  const PowerAmplifier pa(20.0, 46.0);  // 20 dB gain, generous P1dB
  const double in = std::sqrt(dbm_to_watts(-10.0));
  const double out_dbm = watts_to_dbm(std::pow(pa.output_amplitude(in), 2.0));
  EXPECT_NEAR(out_dbm, 10.0, 0.1);
}

TEST(RadioArray, OffsetsAndPhases) {
  Rng rng(7);
  RadioArrayConfig cfg;
  RadioArray array(4, cfg, rng);
  const std::vector<double> offsets = {0, 7, 20, 49};
  array.tune(offsets);
  EXPECT_EQ(array.offsets_hz(), offsets);
  const auto phases = array.initial_phases();
  ASSERT_EQ(phases.size(), 4u);
  // With an Octoclock, actual offsets equal programmed ones.
  const auto actual = array.actual_offsets_hz();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(actual[i], offsets[i], 1e-9);
}

TEST(RadioArray, FreeRunningDriftBreaksOffsets) {
  Rng rng(8);
  RadioArrayConfig cfg;
  cfg.clocks = ClockDistribution::free_running();
  RadioArray array(4, cfg, rng);
  const std::vector<double> offs = {0, 7, 20, 49};
  array.tune(offs);
  const auto actual = array.actual_offsets_hz();
  // 2 ppm of 915 MHz is ~1.8 kHz — swamps the Hz-scale CIB offsets.
  double worst = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    worst = std::max(worst, std::abs(actual[i] - array.offsets_hz()[i]));
  }
  EXPECT_GT(worst, 100.0);
}

TEST(RadioArray, TransmitCarriesEnvelopeAtDrivePower) {
  Rng rng(9);
  RadioArrayConfig cfg;
  cfg.drive_dbm = 10.0;
  cfg.pa_p1db_dbm = 30.0;  // linear at this drive
  RadioArray array(2, cfg, rng);
  const std::vector<double> offs = {0.0, 100.0};
  array.tune(offs);
  const std::vector<double> env(256, 1.0);
  const auto waves = array.transmit(env);
  ASSERT_EQ(waves.size(), 2u);
  const double expect_amp = std::sqrt(dbm_to_watts(10.0));
  for (const auto& w : waves) {
    EXPECT_NEAR(std::abs(w.samples[10]), expect_amp, 0.01 * expect_amp);
  }
}

TEST(RadioArray, TransmitModulatesEnvelopeShape) {
  Rng rng(10);
  RadioArray array(1, RadioArrayConfig{}, rng);
  const std::vector<double> offs = {0.0};
  array.tune(offs);
  std::vector<double> env(100, 1.0);
  for (std::size_t i = 40; i < 60; ++i) env[i] = 0.0;  // a PIE-like notch
  const auto waves = array.transmit(env);
  EXPECT_GT(std::abs(waves[0].samples[10]), 0.1);
  EXPECT_NEAR(std::abs(waves[0].samples[50]), 0.0, 1e-12);
}

TEST(RadioArray, RetuneRedrawsPhases) {
  Rng rng(11);
  RadioArray array(3, RadioArrayConfig{}, rng);
  const auto before = array.initial_phases();
  array.retune(rng);
  const auto after = array.initial_phases();
  int changed = 0;
  for (std::size_t i = 0; i < 3; ++i) changed += (before[i] != after[i]);
  EXPECT_EQ(changed, 3);
}

TEST(RadioArray, SynchronizedEnvelopesUnderOctoclock) {
  // The CIB requirement: all antennas' command envelopes align. With ns PPS
  // jitter and us-scale samples, the envelopes must align exactly.
  Rng rng(12);
  RadioArray array(4, RadioArrayConfig{}, rng);
  const std::vector<double> offs = {0, 7, 20, 49};
  array.tune(offs);
  std::vector<double> env(64, 1.0);
  env[32] = 0.0;
  const auto waves = array.transmit(env);
  for (const auto& w : waves) {
    EXPECT_NEAR(std::abs(w.samples[32]), 0.0, 1e-12);
    EXPECT_GT(std::abs(w.samples[31]), 0.1);
  }
}

// Property: PA output power is monotone in input power for any smoothness.
class PaMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PaMonotone, OutputMonotone) {
  const PowerAmplifier pa(0.0, 30.0, GetParam());
  double prev = 0.0;
  for (double in_dbm = -20.0; in_dbm <= 40.0; in_dbm += 2.0) {
    const double out = pa.output_amplitude(std::sqrt(dbm_to_watts(in_dbm)));
    EXPECT_GE(out, prev);
    prev = out;
  }
}

INSTANTIATE_TEST_SUITE_P(Smoothness, PaMonotone,
                         ::testing::Values(1.0, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace ivnet
