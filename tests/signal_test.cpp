// Tests for ivnet/signal: waveform synthesis, envelopes, correlation,
// filtering, noise, and single-bin DFT.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/signal/correlate.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/goertzel.hpp"
#include "ivnet/signal/noise.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {
namespace {

TEST(Waveform, ToneHasUnitMagnitudeAndCorrectPhaseRate) {
  const double fs = 10e3;
  const auto tone = make_tone(100.0, 0.3, 1000, fs);
  ASSERT_EQ(tone.size(), 1000u);
  for (std::size_t i = 0; i < tone.size(); i += 97) {
    EXPECT_NEAR(std::abs(tone.samples[i]), 1.0, 1e-9);
    const double expect = wrap_phase(0.3 + kTwoPi * 100.0 * tone.time_of(i));
    EXPECT_NEAR(wrap_phase(std::arg(tone.samples[i])), expect, 1e-6);
  }
}

TEST(Waveform, ToneLongRunStaysNormalized) {
  const auto tone = make_tone(137.0, 0.0, 200000, 20e3);
  EXPECT_NEAR(std::abs(tone.samples.back()), 1.0, 1e-9);
}

TEST(Waveform, MultitonePeaksAtNWithZeroPhases) {
  const std::vector<double> offsets = {0, 7, 20, 49, 68};
  const std::vector<double> phases(5, 0.0);
  const auto wave = make_multitone(offsets, phases, {}, 2000, 2000.0);
  // At t = 0 all tones align: |sum| = 5.
  EXPECT_NEAR(std::abs(wave.samples[0]), 5.0, 1e-9);
  EXPECT_NEAR(peak_amplitude(wave), 5.0, 1e-6);
}

TEST(Waveform, AccumulateAndScale) {
  Waveform acc;
  const auto tone = make_tone(10.0, 0.0, 100, 1000.0);
  accumulate(acc, tone, {2.0, 0.0});
  accumulate(acc, tone, {1.0, 0.0});
  EXPECT_NEAR(std::abs(acc.samples[0]), 3.0, 1e-12);
  scale(acc, {0.5, 0.0});
  EXPECT_NEAR(std::abs(acc.samples[0]), 1.5, 1e-12);
}

TEST(Waveform, ModulateEnvelopeZeroesWhereEnvelopeZero) {
  const std::vector<double> env = {1.0, 0.0, 0.5, 1.0};
  const auto wave = modulate_envelope(env, 50.0, 0.0, 1000.0);
  EXPECT_NEAR(std::abs(wave.samples[0]), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(wave.samples[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(wave.samples[2]), 0.5, 1e-12);
}

TEST(Waveform, EnergyAndMeanPower) {
  const auto tone = make_tone(100.0, 0.0, 1000, 1000.0);
  EXPECT_NEAR(mean_power(tone), 1.0, 1e-9);
  EXPECT_NEAR(energy(tone), 1.0, 1e-9);  // 1 s of unit power
}

TEST(Waveform, PeakIndexFindsMax) {
  Waveform wave;
  wave.sample_rate_hz = 1.0;
  wave.samples = {cplx{0.1, 0}, cplx{0, 2.0}, cplx{0.5, 0.5}};
  EXPECT_EQ(peak_index(wave), 1u);
  EXPECT_NEAR(peak_amplitude(wave), 2.0, 1e-12);
}

TEST(Envelope, MagnitudeAndFluctuation) {
  Waveform wave;
  wave.sample_rate_hz = 1.0;
  wave.samples = {cplx{1.0, 0}, cplx{0, 0.5}, cplx{0.8, 0.6}};
  const auto env = envelope(wave);
  EXPECT_NEAR(env[0], 1.0, 1e-12);
  EXPECT_NEAR(env[1], 0.5, 1e-12);
  EXPECT_NEAR(env[2], 1.0, 1e-12);
  EXPECT_NEAR(fluctuation(env), 0.5, 1e-12);
}

TEST(Envelope, MovingAverageSmooths) {
  const std::vector<double> x = {0, 1, 0, 1, 0, 1, 0, 1};
  const auto smooth = moving_average(x, 4);
  for (std::size_t i = 4; i < smooth.size(); ++i) {
    EXPECT_NEAR(smooth[i], 0.5, 1e-12);
  }
}

TEST(Envelope, RcLowpassConvergesToDc) {
  const std::vector<double> x(1000, 2.0);
  const auto y = rc_lowpass(x, 1e-3, 100e3);
  EXPECT_NEAR(y.back(), 2.0, 1e-3);
}

TEST(Envelope, SliceAndMidpoint) {
  const std::vector<double> env = {1.0, 0.1, 0.9, 0.2};
  const double th = midpoint_threshold(env);
  EXPECT_NEAR(th, 0.55, 1e-12);
  const auto bits = slice(env, th);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
  EXPECT_TRUE(bits[2]);
  EXPECT_FALSE(bits[3]);
}

TEST(Correlate, IdenticalSignalsGiveOne) {
  const std::vector<double> a = {1, -1, 1, 1, -1, 0.5};
  EXPECT_NEAR(normalized_correlation(a, a), 1.0, 1e-12);
}

TEST(Correlate, InvertedSignalsGiveMinusOne) {
  const std::vector<double> a = {1, -1, 1, 1, -1, 0.5};
  std::vector<double> b = a;
  for (auto& x : b) x = -x;
  EXPECT_NEAR(normalized_correlation(a, b), -1.0, 1e-12);
}

TEST(Correlate, FindsShiftedNeedle) {
  std::vector<double> haystack(200, 0.0);
  const std::vector<double> needle = {1, -1, 1, -1, 1, 1, -1, -1};
  for (std::size_t i = 0; i < needle.size(); ++i) haystack[57 + i] = needle[i];
  const auto peak = best_correlation(haystack, needle);
  EXPECT_EQ(peak.offset, 57u);
  EXPECT_GT(peak.value, 0.99);
}

TEST(Correlate, ComplexCorrelationPhaseInvariant) {
  const auto a = make_tone(100.0, 0.0, 256, 10e3);
  const auto b = make_tone(100.0, 1.2, 256, 10e3);  // same tone, phase shift
  EXPECT_NEAR(complex_correlation(a.samples, b.samples), 1.0, 1e-9);
}

TEST(Correlate, DegenerateInputsReturnZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> shorter = {1.0, 2.0};
  const std::vector<double> constant = {4.0, 4.0, 4.0};
  const std::vector<double> empty;
  const std::vector<double> single = {7.0};
  // Mismatched lengths, empty spans, zero variance (constant / length-1):
  // all documented to return 0 rather than NaN.
  EXPECT_EQ(normalized_correlation(a, shorter), 0.0);
  EXPECT_EQ(normalized_correlation(empty, empty), 0.0);
  EXPECT_EQ(normalized_correlation(a, constant), 0.0);
  EXPECT_EQ(normalized_correlation(constant, constant), 0.0);
  EXPECT_EQ(normalized_correlation(single, single), 0.0);
  // Searching with a degenerate needle is equally quiet.
  EXPECT_EQ(best_correlation(a, empty).value, 0.0);
  EXPECT_EQ(best_correlation(shorter, a).value, 0.0);
}

TEST(Correlate, FindsFm0PreambleAtFinalValidOffset) {
  // The tag's 12-half-bit FM0 preamble ("110100100011") planted at the LAST
  // offset the sliding search can reach: offset = haystack - needle. An
  // off-by-one in the search bound would miss it entirely.
  const double blf_hz = 100e3;
  const double fs = 800e3;
  const auto needle = gen2::fm0_preamble_template(blf_hz, fs);
  ASSERT_FALSE(needle.empty());
  std::vector<double> haystack(needle.size() + 333, 0.0);
  const std::size_t final_offset = haystack.size() - needle.size();
  for (std::size_t i = 0; i < needle.size(); ++i) {
    haystack[final_offset + i] = needle[i];
  }
  const auto peak = best_correlation(haystack, needle);
  EXPECT_EQ(peak.offset, final_offset);
  EXPECT_GT(peak.value, 0.99);
}

TEST(Fir, LowpassPassesDcRejectsHighFrequency) {
  const auto taps = design_lowpass(500.0, 10e3, 63);
  const auto dc = fir_filter(make_tone(0.0, 0.0, 512, 10e3), taps);
  const auto hf = fir_filter(make_tone(3000.0, 0.0, 512, 10e3), taps);
  EXPECT_NEAR(std::abs(dc.samples[256]), 1.0, 0.01);
  EXPECT_LT(std::abs(hf.samples[256]), 0.02);
}

TEST(Fir, BandpassSelectsBand) {
  const auto taps = design_bandpass(1800.0, 2200.0, 10e3, 101);
  const auto in_band = fir_filter(make_tone(2000.0, 0.0, 1024, 10e3), taps);
  const auto out_band = fir_filter(make_tone(500.0, 0.0, 1024, 10e3), taps);
  EXPECT_GT(std::abs(in_band.samples[512]), 0.8);
  EXPECT_LT(std::abs(out_band.samples[512]), 0.05);
}

TEST(Fir, SawFilterRejectsOutOfBand) {
  SawFilter saw(0.0, 40e3, 50.0, 800e3);
  const auto pass = saw.apply(make_tone(5e3, 0.0, 4096, 800e3));
  const auto stop = saw.apply(make_tone(200e3, 0.0, 4096, 800e3));
  const double pass_amp = std::abs(pass.samples[2048]);
  const double stop_amp = std::abs(stop.samples[2048]);
  EXPECT_GT(pass_amp, 0.9);
  // Rejection should be at least ~35 dB and bounded by the leakage floor.
  EXPECT_LT(amplitude_to_db(stop_amp / pass_amp), -35.0);
}

TEST(Fir, DesignLowpassRejectsInvalidArgumentsInReleaseToo) {
  // These used to be assert-only and vanished under NDEBUG, silently
  // designing aliased garbage taps. They now throw unconditionally — this
  // test runs in the Release/ASan/TSan configs as well as Debug.
  EXPECT_THROW(design_lowpass(5000.0, 10e3, 63), std::invalid_argument);
  EXPECT_THROW(design_lowpass(6000.0, 10e3, 63), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.0, 10e3, 63), std::invalid_argument);
  EXPECT_THROW(design_lowpass(-100.0, 10e3, 63), std::invalid_argument);
  EXPECT_THROW(design_lowpass(500.0, 10e3, 0), std::invalid_argument);
  EXPECT_THROW(design_lowpass(500.0, 0.0, 63), std::invalid_argument);
  EXPECT_NO_THROW(design_lowpass(4999.0, 10e3, 1));
}

TEST(Fir, DesignBandpassRejectsInvalidBandEdges) {
  EXPECT_THROW(design_bandpass(2200.0, 1800.0, 10e3, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(2000.0, 2000.0, 10e3, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(-10.0, 2000.0, 10e3, 101),
               std::invalid_argument);
  EXPECT_THROW(design_bandpass(1800.0, 5001.0, 10e3, 101),
               std::invalid_argument);
  EXPECT_NO_THROW(design_bandpass(0.0, 2000.0, 10e3, 101));
}

TEST(Noise, AwgnPowerMatchesRequest) {
  Rng rng(3);
  Waveform wave;
  wave.sample_rate_hz = 1e6;
  wave.samples.assign(200000, cplx{0.0, 0.0});
  add_awgn(wave, 0.25, rng);
  EXPECT_NEAR(mean_power(wave), 0.25, 0.01);
}

TEST(Noise, ThermalFloorMagnitude) {
  // kTB at 290 K over 1 Hz is -174 dBm; over 1 MHz with NF 6 dB: -108 dBm.
  const double p = thermal_noise_power(1e6, 6.0);
  EXPECT_NEAR(watts_to_dbm(p), -108.0, 0.3);
}

TEST(Goertzel, PicksToneAmplitudeAndRejectsOthers) {
  auto wave = make_tone(1234.0, 0.7, 8192, 100e3);
  scale(wave, {0.5, 0.0});
  EXPECT_NEAR(std::abs(goertzel(wave, 1234.0)), 0.5, 1e-3);
  EXPECT_LT(std::abs(goertzel(wave, 4321.0)), 0.01);
}

TEST(Goertzel, BandPowerCoversTone) {
  const auto wave = make_tone(1000.0, 0.0, 8192, 100e3);
  EXPECT_GT(band_power(wave, 900.0, 1100.0, 17), 0.5);
  EXPECT_LT(band_power(wave, 5000.0, 6000.0, 17), 0.01);
}

// Property sweep: multitone peak amplitude never exceeds the tone count.
class MultitonePeakBound : public ::testing::TestWithParam<int> {};

TEST_P(MultitonePeakBound, PeakAtMostN) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 77 + 1);
  std::vector<double> offsets(n), phases(n);
  for (int i = 0; i < n; ++i) {
    offsets[i] = static_cast<double>(rng.uniform_int(0, 200));
    phases[i] = rng.phase();
  }
  const auto wave = make_multitone(offsets, phases, {}, 4096, 4096.0);
  EXPECT_LE(peak_amplitude(wave), static_cast<double>(n) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(N, MultitonePeakBound,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 16));

}  // namespace
}  // namespace ivnet
