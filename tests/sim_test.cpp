// Tests for ivnet/sim: scenarios, link calibration sanity, the gain-trial
// machinery behind Figs. 9-12, and range search behind Fig. 13.
#include <gtest/gtest.h>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

namespace ivnet {
namespace {

constexpr double kF = calib::kCibCenterHz;

TEST(Scenario, BuildersProduceSaneGeometry) {
  const auto air = air_scenario(5.0);
  EXPECT_DOUBLE_EQ(air.air_distance_m, 5.0);
  EXPECT_DOUBLE_EQ(air.depth_m, 0.0);
  EXPECT_EQ(air.multipath_rays, 1u);

  const auto tank = water_tank_scenario(0.1, 0.9);
  EXPECT_DOUBLE_EQ(tank.air_distance_m, 0.9);
  EXPECT_GT(tank.depth_m, 0.1);
  EXPECT_EQ(tank.stack.layers().size(), 2u);  // water + tube air pocket

  const auto gastric = swine_gastric_scenario(0.55);
  EXPECT_EQ(gastric.stack.layers().size(), 6u);
  EXPECT_GT(gastric.depth_m, 0.05);

  const auto subcut = swine_subcutaneous_scenario(0.55);
  EXPECT_LT(subcut.depth_m, gastric.depth_m);
}

TEST(Link, VoltageFallsWithDistance) {
  const auto tag = standard_tag();
  double prev = 1e9;
  for (double r : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double v = single_antenna_voltage(air_scenario(r), tag, kF);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Link, VoltageFallsExponentiallyWithWaterDepth) {
  const auto tag = standard_tag();
  const double v5 = single_antenna_voltage(
      water_tank_scenario(0.05, 0.9), tag, kF);
  const double v10 = single_antenna_voltage(
      water_tank_scenario(0.10, 0.9), tag, kF);
  const double v15 = single_antenna_voltage(
      water_tank_scenario(0.15, 0.9), tag, kF);
  // Constant ratio per 5 cm -> exponential.
  EXPECT_NEAR(v5 / v10, v10 / v15, 0.05 * (v5 / v10));
  EXPECT_GT(v5 / v10, 1.3);
}

TEST(Link, StandardTagReceivesMoreThanMiniature) {
  const auto scen = air_scenario(2.0);
  EXPECT_GT(single_antenna_voltage(scen, standard_tag(), kF),
            3.0 * single_antenna_voltage(scen, miniature_tag(), kF));
}

TEST(Link, CalibrationAnchorsSingleAntennaAirRange) {
  // Sec. 6.1.2: a single antenna powers the standard tag out to ~5.2 m.
  const auto tag = standard_tag();
  const TagDevice device(tag);
  const double v_at_52 = single_antenna_voltage(air_scenario(5.2), tag, kF);
  EXPECT_NEAR(v_at_52, device.min_peak_voltage(), 0.15 * v_at_52);
}

TEST(Link, MiniatureCannotBePoweredInWaterBySingleAntenna) {
  // Sec. 6.1.2: "without CIB beamforming, neither the small nor the
  // standard tag can be powered up" at depth in the tank.
  const auto tag = miniature_tag();
  const TagDevice device(tag);
  const double v = single_antenna_voltage(
      water_tank_scenario(0.01, calib::kRangeSetupStandoffM), tag, kF);
  EXPECT_LT(v, device.min_peak_voltage());
}

TEST(GainTrials, CibBeatsBaselineInMedian) {
  Rng rng(1);
  const auto trials = run_gain_trials(
      water_tank_scenario(0.05, calib::kGainSetupStandoffM), standard_tag(),
      FrequencyPlan::paper_default(), 60, rng);
  const auto cib = summarize_cib(trials);
  const auto base = summarize_baseline(trials);
  EXPECT_GT(cib.p50, 4.0 * base.p50);  // paper: ~8x median
  EXPECT_GT(cib.p50, 25.0);            // strong absolute gain at N = 10
}

TEST(GainTrials, GainsScaleWithAntennaCount) {
  Rng rng(2);
  const auto scen = water_tank_scenario(0.05, calib::kGainSetupStandoffM);
  const auto few = summarize_cib(run_gain_trials(
      scen, standard_tag(), FrequencyPlan::paper_default().truncated(3), 60,
      rng));
  const auto many = summarize_cib(run_gain_trials(
      scen, standard_tag(), FrequencyPlan::paper_default(), 60, rng));
  EXPECT_GT(many.p50, 2.0 * few.p50);
}

TEST(GainTrials, GenieBoundsCib) {
  Rng rng(3);
  const auto trials =
      run_gain_trials(air_scenario(2.0), standard_tag(),
                      FrequencyPlan::paper_default(), 40, rng);
  for (const auto& t : trials) {
    EXPECT_LE(t.cib_gain, t.genie_gain + 1e-6);
  }
}

TEST(RangeSearch, AirRangeGrowsWithAntennas) {
  Rng rng(4);
  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default();
  const double r1 = max_air_range(tag, plan.truncated(1), 9, rng);
  const double r4 = max_air_range(tag, plan.truncated(4), 9, rng);
  const double r8 = max_air_range(tag, plan.truncated(8), 9, rng);
  EXPECT_GT(r4, 1.5 * r1);
  EXPECT_GT(r8, r4);
  // Paper anchors: ~5.2 m at one antenna, ~38 m at eight (7.6x).
  EXPECT_NEAR(r1, 5.2, 1.3);
  EXPECT_GT(r8 / r1, 5.0);
  EXPECT_LT(r8 / r1, 9.0);
}

TEST(RangeSearch, WaterDepthLogarithmicInAntennas) {
  Rng rng(5);
  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default();
  const double d2 = max_water_depth(tag, plan.truncated(2), 9, rng);
  const double d4 = max_water_depth(tag, plan.truncated(4), 9, rng);
  const double d8 = max_water_depth(tag, plan.truncated(8), 9, rng);
  EXPECT_GT(d4, d2);
  EXPECT_GT(d8, d4);
  // Log-like: the increment shrinks... in antenna-count doublings the depth
  // step is ~ln(2)/alpha each time, so d8-d4 should not exceed ~1.5x d4-d2.
  EXPECT_LT(d8 - d4, 1.5 * (d4 - d2) + 0.01);
}

TEST(RangeSearch, MiniatureShallowerThanStandard) {
  Rng rng(6);
  const auto plan = FrequencyPlan::paper_default().truncated(8);
  const double d_std = max_water_depth(standard_tag(), plan, 9, rng);
  const double d_mini = max_water_depth(miniature_tag(), plan, 9, rng);
  EXPECT_GT(d_std, d_mini);
  EXPECT_GT(d_mini, 0.04);  // paper: 11 cm with 8 antennas
}

TEST(Session, AirSessionSucceedsEndToEnd) {
  Rng rng(7);
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  const auto report =
      run_gen2_session(air_scenario(2.0), standard_tag(), cfg, rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.command_decoded);
  EXPECT_TRUE(report.replied);
  EXPECT_TRUE(report.rn16_decoded);
  EXPECT_GT(report.preamble_correlation, 0.8);
  EXPECT_FALSE(report.tag_rail_trace.empty());
}

TEST(Session, DeepGastricMiniatureFails) {
  // Sec. 6.2: "IVN was unable to establish communication with the miniature
  // tag when placed inside the stomach."
  Rng rng(8);
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  int successes = 0;
  for (int k = 0; k < 6; ++k) {
    const auto report = run_gen2_session(
        swine_gastric_scenario(calib::kSwineStandoffM), miniature_tag(), cfg,
        rng);
    successes += report.rn16_decoded;
  }
  EXPECT_EQ(successes, 0);
}

TEST(Session, SubcutaneousWorksForBothTags) {
  Rng rng(9);
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  cfg.reader.averaging_periods = 10;
  for (const auto& tag : {standard_tag(), miniature_tag()}) {
    const auto report = run_gen2_session(
        swine_subcutaneous_scenario(calib::kSwineStandoffM), tag, cfg, rng);
    EXPECT_TRUE(report.rn16_decoded) << tag.antenna.name();
  }
}

TEST(Session, FarAirSessionFailsToPower) {
  Rng rng(10);
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(2);
  const auto report =
      run_gen2_session(air_scenario(60.0), standard_tag(), cfg, rng);
  EXPECT_FALSE(report.powered);
  EXPECT_FALSE(report.rn16_decoded);
}

// Property sweep: power-up success is monotone in antenna count.
class PowerUpMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PowerUpMonotone, MoreAntennasNeverHurt) {
  Rng rng(42);
  const auto scen = water_tank_scenario(GetParam(),
                                        calib::kRangeSetupStandoffM);
  const auto plan = FrequencyPlan::paper_default();
  bool prev = false;
  for (std::size_t n : {1u, 2u, 4u, 6u, 8u, 10u}) {
    const bool ok =
        can_power_up(scen, standard_tag(), plan.truncated(n), 15, 0.5, rng);
    if (prev) {
      EXPECT_TRUE(ok) << "regression at n=" << n;
    }
    prev = prev || ok;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, PowerUpMonotone,
                         ::testing::Values(0.02, 0.06, 0.10, 0.14, 0.18));

}  // namespace
}  // namespace ivnet
