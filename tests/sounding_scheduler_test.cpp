// Tests for ivnet/rf/sounding (coherence bandwidth, Sec. 3.7 assumption)
// and ivnet/cib/scheduler (adaptive duty cycling, Sec. 2.3/3).
#include <gtest/gtest.h>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/scheduler.hpp"
#include "ivnet/rf/sounding.hpp"

namespace ivnet {
namespace {

TEST(Sounding, SingleRayHasZeroSpread) {
  Rng rng(1);
  const std::vector<double> amps = {1.0};
  const auto ch = make_blind_channel(amps, rng);
  const auto profile = delay_profile(ch, 0);
  EXPECT_DOUBLE_EQ(profile.rms_spread_s, 0.0);
  EXPECT_NEAR(profile.total_power, 1.0, 1e-12);
  EXPECT_GT(coherence_bandwidth_hz(profile), 1e17);
}

TEST(Sounding, MultipathSpreadMatchesConstruction) {
  Rng rng(2);
  const std::vector<double> amps = {1.0};
  const auto ch = make_multipath_channel(amps, 8, 100e-9, rng);
  const auto profile = delay_profile(ch, 0);
  EXPECT_GT(profile.rms_spread_s, 5e-9);
  EXPECT_LT(profile.rms_spread_s, 100e-9);
  // Bc = 1/(5 tau): tens of MHz for tens of ns.
  const double bc = coherence_bandwidth_hz(profile);
  EXPECT_GT(bc, 1e6);
  EXPECT_LT(bc, 1e9);
}

TEST(Sounding, FlatnessOneForSingleRay) {
  Rng rng(3);
  const std::vector<double> amps = {1.0, 1.0};
  const auto ch = make_blind_channel(amps, rng);
  EXPECT_NEAR(band_flatness(ch, 0, -137.0, 137.0), 1.0, 1e-9);
  EXPECT_NEAR(band_flatness(ch, 1, -35e6, 35e6), 1.0, 1e-9);
}

TEST(Sounding, MultipathNotFlatOverWideBand) {
  Rng rng(4);
  const std::vector<double> amps = {1.0};
  bool found_notchy = false;
  for (int k = 0; k < 10 && !found_notchy; ++k) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    found_notchy = band_flatness(ch, 0, -20e6, 20e6) < 0.7;
  }
  EXPECT_TRUE(found_notchy);
}

TEST(Sounding, PaperPlanAlwaysWithinCoherence) {
  // Sec. 3.7's assumption holds trivially for Hz-scale offsets against
  // ns-scale delay spreads: |span| * tau ~ 1e-5 cycles.
  Rng rng(5);
  const std::vector<double> amps(10, 1.0);
  const auto offsets = FrequencyPlan::paper_default().offsets_hz();
  for (int k = 0; k < 10; ++k) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    EXPECT_TRUE(plan_within_coherence(ch, offsets));
  }
}

TEST(Sounding, MegahertzPlanViolatesCoherence) {
  Rng rng(6);
  const std::vector<double> amps(4, 1.0);
  const std::vector<double> wide = {0.0, 5e6, 10e6, 20e6};
  bool violated = false;
  for (int k = 0; k < 10 && !violated; ++k) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    violated = !plan_within_coherence(ch, wide);
  }
  EXPECT_TRUE(violated);
}

TEST(Scheduler, QueriesImmediatelyWhenEnergyRich) {
  DutyCycleScheduler sched(SchedulerConfig{});
  // Harvest far above the burst cost: every period can carry a query.
  EXPECT_EQ(sched.on_period(1e-4), ScheduleAction::kQuery);
  sched.on_reply();
  EXPECT_EQ(sched.on_period(1e-4), ScheduleAction::kQuery);
  EXPECT_NEAR(sched.steady_duty_cycle(), 1.0, 1e-9);
}

TEST(Scheduler, AccumulatesWhenEnergyPoor) {
  SchedulerConfig cfg;
  cfg.burst_energy_j = 2e-6;
  cfg.safety_margin = 1.5;
  DutyCycleScheduler sched(cfg);
  // 1 uJ per period against a 3 uJ requirement: charge twice, query third.
  EXPECT_EQ(sched.on_period(1e-6), ScheduleAction::kCharge);
  EXPECT_EQ(sched.on_period(1e-6), ScheduleAction::kCharge);
  EXPECT_EQ(sched.on_period(1e-6), ScheduleAction::kQuery);
  EXPECT_NEAR(sched.steady_duty_cycle(), 1.0 / 3.0, 1e-6);
}

TEST(Scheduler, SilenceTriggersBackoff) {
  SchedulerConfig cfg;
  cfg.burst_energy_j = 2e-6;
  DutyCycleScheduler sched(cfg);
  sched.on_period(1e-5);
  sched.on_silence();
  EXPECT_DOUBLE_EQ(sched.banked_energy_j(), 0.0);
  // After backoff the next query needs twice the margin: 1 period of 1e-5
  // no longer suffices for 2e-6 * 3.0 = 6e-6... it does; use smaller.
  int charges = 0;
  while (sched.on_period(1.4e-6) == ScheduleAction::kCharge) ++charges;
  // margin doubled to 3.0: need 6 uJ at 1.4 uJ/period -> 5 periods.
  EXPECT_GE(charges, 4);
  sched.on_reply();  // success resets the margin
  int charges_after = 0;
  while (sched.on_period(1.4e-6) == ScheduleAction::kCharge) ++charges_after;
  EXPECT_LT(charges_after, charges);
}

TEST(Scheduler, MaxChargePeriodsForcesAttempt) {
  SchedulerConfig cfg;
  cfg.burst_energy_j = 1.0;  // unreachable
  cfg.max_charge_periods = 5;
  DutyCycleScheduler sched(cfg);
  int periods = 0;
  while (sched.on_period(1e-9) == ScheduleAction::kCharge) ++periods;
  EXPECT_EQ(periods, 4);  // 5th period returns kQuery
}

TEST(Scheduler, EstimateTracksEwma) {
  SchedulerConfig cfg;
  cfg.ewma_alpha = 0.5;
  DutyCycleScheduler sched(cfg);
  sched.on_period(4e-6);
  EXPECT_NEAR(sched.harvest_estimate_j(), 4e-6, 1e-12);
  sched.on_period(0.0);
  EXPECT_NEAR(sched.harvest_estimate_j(), 2e-6, 1e-12);
}

}  // namespace
}  // namespace ivnet
