// Service front-end suite: the MPMC ring, the size-class buffer pool, and
// the InventoryService lifecycle (exactly-once execution, bounded-queue
// shedding, graceful-shutdown drain, scalar-oracle response identity).
// The contention tests are the ASan/TSan targets: tools/ci.sh runs this
// binary under both sanitizers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/obs/flight_recorder.hpp"
#include "ivnet/obs/telemetry.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/svc/buffer_pool.hpp"
#include "ivnet/svc/mpmc_queue.hpp"
#include "ivnet/svc/service.hpp"

namespace ivnet::svc {
namespace {

// ---------------------------------------------------------------- MPMC ring

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRingQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRingQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpmcRingQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcRingQueue<int>(256).capacity(), 256u);
  EXPECT_EQ(MpmcRingQueue<int>(257).capacity(), 512u);
}

TEST(MpmcQueueTest, RejectsWhenFullRecoversAfterPop) {
  MpmcRingQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99)) << "full ring must shed, not block";
  int out = -1;
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.try_push(4)) << "one pop frees exactly one slot";
  EXPECT_FALSE(queue.try_push(5));
}

TEST(MpmcQueueTest, PopOnEmptyFails) {
  MpmcRingQueue<int> queue(4);
  int out = 0;
  EXPECT_FALSE(queue.try_pop(out));
  queue.try_push(7);
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(MpmcQueueTest, FifoPerProducerWithSingleConsumer) {
  // Two producers interleave arbitrarily, but each producer's own values
  // must come out in the order it pushed them.
  constexpr std::uint64_t kPerProducer = 20000;
  MpmcRingQueue<std::uint64_t> queue(64);
  std::atomic<bool> go{false};
  auto producer = [&](std::uint64_t tag) {
    while (!go.load()) {
    }
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      const std::uint64_t value = (tag << 32) | i;
      while (!queue.try_push(value)) std::this_thread::yield();
    }
  };
  std::thread p0(producer, 0), p1(producer, 1);
  std::int64_t last[2] = {-1, -1};
  std::uint64_t popped = 0;
  go.store(true);
  while (popped < 2 * kPerProducer) {
    std::uint64_t value = 0;
    if (!queue.try_pop(value)) continue;
    const std::size_t tag = value >> 32;
    const auto seq = static_cast<std::int64_t>(value & 0xffffffffull);
    ASSERT_EQ(seq, last[tag] + 1) << "producer " << tag << " reordered";
    last[tag] = seq;
    ++popped;
  }
  p0.join();
  p1.join();
}

TEST(MpmcQueueTest, ExactlyOnceUnderProducerConsumerContention) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 8000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  MpmcRingQueue<std::size_t> queue(32);  // small: force wraparound pressure
  std::vector<std::atomic<std::uint32_t>> seen(kTotal);
  for (auto& s : seen) s.store(0);
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t value = p * kPerProducer + i;
        while (!queue.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::size_t value = 0;
        if (queue.try_pop(value)) {
          seen[value].fetch_add(1);
          if (consumed.fetch_add(1) + 1 == kTotal) return;
        } else if (consumed.load() >= kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(seen[v].load(), 1u) << "value " << v << " not exactly-once";
  }
  std::size_t drained = 0;
  EXPECT_FALSE(queue.try_pop(drained)) << "ring must end empty";
}

TEST(MpmcQueueTest, CreditHolderRetriesTransientEmptyPop) {
  // The service pairs the ring with a counting semaphore: one credit per
  // push. Under concurrent producers a credit can land BEFORE the FIFO head
  // is published (producer A preempted between claiming its slot and
  // storing its seq while producer B completes a later push), so a consumer
  // holding a credit can see try_pop fail transiently. The consumer
  // contract is: retry until the in-flight element lands; only exit on
  // empty once the stop flag says no element can be in flight. A consumer
  // that instead treated the first empty pop as "done" would strand
  // elements here and this test would time out / fail the count.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 20000;
  constexpr std::size_t kTotal = kProducers * kPerProducer;

  MpmcRingQueue<std::size_t> queue(8);  // tiny: maximize claim/publish races
  std::counting_semaphore<> credits{0};
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        while (!queue.try_push(i)) std::this_thread::yield();
        credits.release();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        credits.acquire();
        std::size_t value = 0;
        while (!queue.try_pop(value)) {
          if (stopping.load(std::memory_order_acquire)) return;
          std::this_thread::yield();
        }
        consumed.fetch_add(1);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) threads[p].join();
  // Every credit is now released; consumers must drain every element
  // without any shutdown help.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (consumed.load() < kTotal &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(consumed.load(), kTotal)
      << "credit holder gave up on a transiently-empty pop";
  stopping.store(true, std::memory_order_release);
  credits.release(static_cast<std::ptrdiff_t>(kConsumers));
  for (std::size_t c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
}

// ------------------------------------------------------------- buffer pool

TEST(BufferPoolTest, SizeClassRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::size_class(0), BufferPool::kMinClass);
  EXPECT_EQ(BufferPool::size_class(1), BufferPool::kMinClass);
  EXPECT_EQ(BufferPool::size_class(64), 64u);
  EXPECT_EQ(BufferPool::size_class(65), 128u);
  EXPECT_EQ(BufferPool::size_class(1000), 1024u);
}

TEST(BufferPoolTest, RecyclesStorageAcrossCheckouts) {
  BufferPool pool;
  std::vector<double> buf = pool.acquire(100);
  const double* storage = buf.data();
  ASSERT_GE(buf.capacity(), 128u);
  pool.release(std::move(buf));
  EXPECT_EQ(pool.pooled_buffers(), 1u);

  // Same class: must hand back the same storage, no fresh allocation.
  std::vector<double> again = pool.acquire(80);
  EXPECT_EQ(again.data(), storage);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
  pool.release(std::move(again));
}

TEST(BufferPoolTest, HighWaterStopsGrowingOnceWarm) {
  BufferPool pool;
  for (int round = 0; round < 3; ++round) {
    pool.release(pool.acquire(500));
  }
  const std::size_t warm = pool.high_water_bytes();
  EXPECT_GT(warm, 0u);
  for (int round = 0; round < 50; ++round) {
    pool.release(pool.acquire(500));
    // Smaller checkouts reuse the parked larger-class buffer (first fit by
    // class): still no fresh allocation.
    pool.release(pool.acquire(100));
  }
  EXPECT_EQ(pool.high_water_bytes(), warm)
      << "steady-state checkouts must not regrow the pool";
}

TEST(BufferPoolTest, TrimDropsParkedStorage) {
  BufferPool pool;
  // Hold both before releasing, or the second acquire would just recycle
  // the first (larger-class) buffer and only one would ever exist.
  std::vector<double> big = pool.acquire(300);
  std::vector<double> small = pool.acquire(30);
  pool.release(std::move(big));
  pool.release(std::move(small));
  EXPECT_EQ(pool.pooled_buffers(), 2u);
  EXPECT_GT(pool.pooled_bytes(), 0u);
  pool.trim();
  EXPECT_EQ(pool.pooled_buffers(), 0u);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  // high-water is a peak, not a level.
  EXPECT_GT(pool.high_water_bytes(), 0u);
}

TEST(BufferPoolTest, ConcurrentCheckoutsAreExclusive) {
  BufferPool pool;
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 2000;
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<double> buf = pool.acquire(64 + 64 * w);
        // Stamp and verify: another thread holding the same storage would
        // tear these writes (and TSan would flag the race outright).
        const double stamp = static_cast<double>(w * kRounds + r);
        for (double& v : buf) v = stamp;
        for (const double& v : buf) {
          if (v != stamp) overlap.store(true);
        }
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load()) << "two checkouts shared storage";
}

// -------------------------------------------------- workspace trim + inline

TEST(DspWorkspaceTrimTest, TrimDropsParkedKeepsHighWater) {
  DspWorkspace ws;
  ws.release(ws.acquire_real(1000));
  ws.release(ws.acquire_cplx(500));
  EXPECT_GT(ws.pooled_bytes(), 0u);
  const std::size_t peak = ws.high_water_bytes();
  ws.trim();
  EXPECT_EQ(ws.pooled_bytes(), 0u);
  EXPECT_EQ(ws.pooled_real(), 0u);
  EXPECT_EQ(ws.pooled_cplx(), 0u);
  EXPECT_EQ(ws.high_water_bytes(), peak);
  // Post-trim acquires regrow from zero live bytes, not negative.
  ws.release(ws.acquire_real(1000));
  EXPECT_EQ(ws.high_water_bytes(), peak);
}

TEST(ScopedInlineParallelTest, ForcesInlineExecutionAndRestores) {
  set_parallel_threads(8);
  std::thread::id caller = std::this_thread::get_id();
  {
    ScopedInlineParallel inline_scope;
    std::atomic<bool> foreign{false};
    parallel_for(64, [&](std::size_t) {
      if (std::this_thread::get_id() != caller) foreign.store(true);
    });
    EXPECT_FALSE(foreign.load())
        << "parallel_for inside the scope must run on the calling thread";
  }
  set_parallel_threads(0);
}

// ---------------------------------------------------------------- service

/// Thread-safe test sink capturing full responses (including a copy of the
/// pooled per-trial buffer, which the service recycles after we return).
struct CaptureSink {
  std::mutex mutex;
  std::map<std::uint64_t, Response> by_id;

  InventoryService::CompletionSink sink() {
    return [this](const Response& r) {
      std::lock_guard<std::mutex> lock(mutex);
      by_id[r.id] = r;  // copies per_trial_elapsed_s before recycling
    };
  }
};

Request decode_request(std::uint64_t id, std::uint64_t seed,
                       std::uint32_t trials = 3) {
  Request request;
  request.kind = RequestKind::kDecode;
  request.id = id;
  request.seed = seed;
  request.trials = trials;
  request.antennas = 2;
  request.snr_db = 14.0;
  return request;
}

TEST(InventoryServiceTest, CompletesEveryAcceptedRequestMatchesOracle) {
  constexpr std::size_t kRequests = 24;
  ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 64;

  CaptureSink capture;
  std::vector<Request> submitted;
  {
    InventoryService service(config, capture.sink());
    for (std::size_t i = 0; i < kRequests; ++i) {
      const Request request = decode_request(i, 1000 + 17 * i);
      ASSERT_TRUE(service.submit(request));
      submitted.push_back(request);
    }
    service.stop();
    EXPECT_EQ(service.accepted(), kRequests);
    EXPECT_EQ(service.completed(), kRequests);
    EXPECT_EQ(service.rejected(), 0u);
    EXPECT_EQ(service.inflight(), 0u);
  }
  ASSERT_EQ(capture.by_id.size(), kRequests);

  // Every response must be bitwise what the scalar oracle produces for the
  // same request: stream(seed, t) per trial, the exact link_config_for
  // template. This is the determinism contract submit-order, worker count,
  // and arrival timing are excluded from.
  for (const Request& request : submitted) {
    const auto it = capture.by_id.find(request.id);
    ASSERT_NE(it, capture.by_id.end());
    const Response& response = it->second;
    EXPECT_EQ(response.trials, request.trials);
    ASSERT_EQ(response.per_trial_elapsed_s.size(), request.trials);

    const ImpairedLinkConfig link = link_config_for(config, request);
    std::uint32_t oracle_succeeded = 0;
    double oracle_elapsed = 0.0;
    for (std::uint32_t t = 0; t < request.trials; ++t) {
      Rng rng = Rng::stream(request.seed, t);
      const LinkSessionReport report = run_impaired_link_session(link, rng);
      oracle_succeeded += report.success ? 1 : 0;
      oracle_elapsed += report.elapsed_s;
      EXPECT_EQ(response.per_trial_elapsed_s[t], report.elapsed_s)
          << "request " << request.id << " trial " << t;
    }
    EXPECT_EQ(response.succeeded, oracle_succeeded);
    EXPECT_EQ(response.sim_elapsed_s, oracle_elapsed);
  }
}

TEST(InventoryServiceTest, InventoryKindUsesHeavierRecoveryTemplate) {
  ServiceConfig config;
  Request request = decode_request(0, 5);
  request.kind = RequestKind::kInventory;
  const ImpairedLinkConfig link = link_config_for(config, request);
  EXPECT_GE(link.recovery.max_attempts, 3);
  EXPECT_EQ(link.adaptive_q.initial_q, 2.0);
  EXPECT_EQ(link.num_antennas, 2u);
  EXPECT_EQ(link.snr_db, 14.0);
}

TEST(InventoryServiceTest, BoundedQueueShedsWhenFull) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_depth = 2;

  InventoryService service(config, nullptr);
  // Block the only worker on the pause gate, then fill the ring.
  Request pause;
  pause.kind = RequestKind::kPause;
  ASSERT_TRUE(service.submit(pause));
  while (service.inflight() == 0) std::this_thread::yield();

  ASSERT_TRUE(service.submit(decode_request(1, 1, 1)));
  ASSERT_TRUE(service.submit(decode_request(2, 2, 1)));
  EXPECT_FALSE(service.submit(decode_request(3, 3, 1)))
      << "third request must shed: ring capacity is 2 and the worker is "
         "blocked";
  EXPECT_EQ(service.rejected(), 1u);

  service.release_pause();
  service.stop();
  EXPECT_EQ(service.accepted(), 3u);  // pause + 2 decodes
  EXPECT_EQ(service.completed(), 3u) << "shutdown must drain the backlog";
}

TEST(InventoryServiceTest, ConcurrentProducersNeverStrandRequests) {
  // submit() is MT-safe for producers. Hammer a tiny ring from several
  // threads so producers constantly race each other's claim/publish window,
  // then require every accepted request to COMPLETE before stop() is
  // called: a worker that mistook a transiently-empty pop for a shutdown
  // credit would exit mid-run and strand an accepted request until stop(),
  // which this wait would catch as a timeout.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 150;
  ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 16;  // small: keep workers racing the publish window

  std::atomic<std::size_t> sink_calls{0};
  InventoryService service(
      config, [&](const Response&) { sink_calls.fetch_add(1); });

  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t id = p * kPerProducer + i;
        if (service.submit(decode_request(id, id, 1))) {
          accepted.fetch_add(1);
        }
        // No yield: shed freely, maximize producer-producer contention.
      }
    });
  }
  for (auto& t : producers) t.join();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (service.completed() < accepted.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(service.completed(), accepted.load())
      << "request stranded before stop(): a worker exited mid-run";
  service.stop();
  EXPECT_EQ(service.completed(), accepted.load());
  EXPECT_EQ(sink_calls.load(), accepted.load());
  EXPECT_EQ(service.accepted(), accepted.load());
}

TEST(InventoryServiceTest, StopUnblocksOutstandingPauses) {
  // Nothing obliges a caller to balance every kPause with release_pause()
  // before stop(): shutdown force-releases the gate for the pause parked on
  // a worker AND the pause still queued behind it, or this test would hang
  // in join / the inline drain.
  ServiceConfig config;
  config.workers = 1;
  config.queue_depth = 8;

  InventoryService service(config, nullptr);
  Request pause;
  pause.kind = RequestKind::kPause;
  ASSERT_TRUE(service.submit(pause));  // parks the only worker on the gate
  while (service.inflight() == 0) std::this_thread::yield();
  ASSERT_TRUE(service.submit(pause));  // queued, never released by us

  service.stop();  // must not deadlock
  EXPECT_EQ(service.completed(), 2u);
  EXPECT_EQ(service.inflight(), 0u);
}

TEST(InventoryServiceTest, GracefulShutdownDrainsBacklog) {
  ServiceConfig config;
  config.workers = 2;
  config.queue_depth = 512;

  std::atomic<std::size_t> completions{0};
  InventoryService service(config,
                           [&](const Response&) { completions.fetch_add(1); });
  constexpr std::size_t kRequests = 300;
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service.submit(decode_request(i, i, 1)));
  }
  // Stop immediately: nearly all of the backlog is still queued.
  service.stop();
  EXPECT_EQ(completions.load(), kRequests);
  EXPECT_EQ(service.completed(), kRequests);
  EXPECT_EQ(service.buffer_pool().pooled_buffers(), 0u)
      << "stop() trims the pool";

  // Post-stop submits are refused and counted separately.
  EXPECT_FALSE(service.submit(decode_request(kRequests, 0, 1)));
  EXPECT_EQ(service.rejected(), 0u)
      << "stopped-service refusals are not queue sheds";
}

TEST(InventoryServiceTest, StopIsIdempotentAndDestructorSafe) {
  ServiceConfig config;
  config.workers = 2;
  InventoryService service(config, nullptr);
  ASSERT_TRUE(service.submit(decode_request(0, 1, 1)));
  service.stop();
  service.stop();  // second stop is a no-op
  EXPECT_EQ(service.completed(), 1u);
}

TEST(InventoryServiceTest, PlanRequestsAreDeterministic) {
  ServiceConfig config;
  config.workers = 2;

  auto run_plan = [&](std::uint64_t seed) {
    CaptureSink capture;
    InventoryService service(config, capture.sink());
    Request request;
    request.kind = RequestKind::kPlan;
    request.id = 1;
    request.seed = seed;
    request.antennas = 6;
    EXPECT_TRUE(service.submit(request));
    service.stop();
    return capture.by_id.at(1).plan_score;
  };
  const double a = run_plan(7);
  const double b = run_plan(7);
  EXPECT_EQ(a, b) << "same seed must reproduce the same plan score";
  EXPECT_GT(a, 0.0);
  EXPECT_NE(run_plan(8), a) << "different seed should explore differently";
}

TEST(InventoryServiceTest, BufferPoolReachesSteadyStateAcrossRequests) {
  ServiceConfig config;
  config.workers = 1;  // single worker: strict request serialization
  config.queue_depth = 64;

  InventoryService service(config, nullptr);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.submit(decode_request(i, i, 50)));
  }
  service.stop();
  // 8 identical-size responses through 1 worker: one buffer serves them
  // all, so the pool's lifetime growth is a single size class.
  EXPECT_EQ(service.buffer_pool().high_water_bytes(),
            BufferPool::size_class(50) * sizeof(double));
}

TEST(InventoryServiceTest, BatchSizeKnobDoesNotChangeResponses) {
  auto digest_with_batch = [](std::size_t batch_size) {
    ServiceConfig config;
    config.workers = 2;
    config.batch_size = batch_size;
    CaptureSink capture;
    InventoryService service(config, capture.sink());
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_TRUE(service.submit(decode_request(i, 100 + i, 9)));
    }
    service.stop();
    std::vector<double> elapsed;
    for (const auto& [id, response] : capture.by_id) {
      elapsed.insert(elapsed.end(), response.per_trial_elapsed_s.begin(),
                     response.per_trial_elapsed_s.end());
    }
    return elapsed;
  };
  const auto scalar = digest_with_batch(1);
  ASSERT_EQ(scalar.size(), 6u * 9u);
  EXPECT_EQ(digest_with_batch(4), scalar);
  EXPECT_EQ(digest_with_batch(32), scalar);
}

TEST(InventoryServiceTest, TelemetryObservesWithoutChangingResponses) {
  // The observability stack must be a pure observer: attaching windows,
  // exemplars, and the flight recorder cannot change a single response
  // byte, and every captured exemplar must replay to its recorded hash
  // through the same execute_request path the workers run.
  constexpr std::size_t kRequests = 24;
  const auto run = [&](obs::ServiceTelemetry* telemetry,
                       obs::FlightRecorder* flight) {
    ServiceConfig config;
    config.workers = 2;
    config.queue_depth = 64;
    config.telemetry = telemetry;
    config.flight = flight;
    config.telemetry_clock = TelemetryClock::kSim;
    CaptureSink capture;
    InventoryService service(config, capture.sink());
    for (std::size_t i = 0; i < kRequests; ++i) {
      Request request = decode_request(i, 1000 + 17 * i);
      request.offered_t_s = 0.1 * static_cast<double>(i);
      EXPECT_TRUE(service.submit(request));
    }
    service.stop();
    std::uint64_t digest = 0;
    for (const auto& [id, response] : capture.by_id) {
      digest ^= response_hash(response);
    }
    return digest;
  };

  const std::uint64_t bare = run(nullptr, nullptr);
  obs::ServiceTelemetry telemetry;
  obs::FlightRecorder flight(/*rings=*/3, /*slots_per_ring=*/256);
  const std::uint64_t instrumented = run(&telemetry, &flight);
  EXPECT_EQ(instrumented, bare);

  // Sim clock: completions land in the epochs of their offered times.
  EXPECT_EQ(telemetry.completed().total_over(60.0, 2.5), kRequests);
  EXPECT_GT(telemetry.exemplars().size(), 0u);
  // Every request leaves at least enqueue + dequeue in the rings.
  EXPECT_GE(flight.total_events(), 2 * kRequests);

  // Replay every exemplar through the worker's own code path.
  ScopedInlineParallel inline_scope;
  ServiceConfig replay_config;
  DspWorkspace workspace;
  for (const obs::Exemplar& e : telemetry.exemplars()) {
    Request request;
    request.kind = static_cast<RequestKind>(e.kind);
    request.trials = e.trials;
    request.antennas = static_cast<std::uint16_t>(e.antennas);
    request.id = e.id;
    request.seed = e.seed;
    request.snr_db = e.snr_db;
    request.medium_loss_db = e.medium_loss_db;
    const Response response =
        execute_request(replay_config, request, workspace);
    EXPECT_EQ(response_hash(response), e.response_hash)
        << "exemplar id " << e.id << " did not replay to its recorded hash";
  }
}

}  // namespace
}  // namespace ivnet::svc
