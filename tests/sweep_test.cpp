// Broad parameter sweeps: media physics across the UHF band, optimizer
// determinism and feasibility across antenna counts, and frequency-plan
// invariants across truncations.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/media/medium.hpp"

namespace ivnet {
namespace {

// --- Media physics across 400 MHz - 2.4 GHz for every preset.
class MediaFrequencySweep : public ::testing::TestWithParam<double> {};

TEST_P(MediaFrequencySweep, PhysicalInvariantsHold) {
  const double f = GetParam();
  for (const auto& m :
       {media::water(), media::gastric_fluid(), media::intestinal_fluid(),
        media::steak(), media::bacon(), media::chicken(), media::skin(),
        media::fat(), media::muscle(), media::stomach_wall()}) {
    // Attenuation and phase constants positive; beta > alpha for any
    // medium with loss tangent < sqrt(3) (all of ours at UHF).
    EXPECT_GT(m.alpha(f), 0.0) << m.name();
    EXPECT_GT(m.beta(f), m.alpha(f)) << m.name();
    // Wavelength shrinks relative to air by at least sqrt(eps_r)
    // (conductivity shortens it further).
    EXPECT_LE(m.wavelength_in(f), wavelength(f) / std::sqrt(m.eps_r()) * 1.01)
        << m.name();
    // Impedance magnitude below air's.
    EXPECT_LT(std::abs(m.impedance(f)), kEta0) << m.name();
    // Boundary transmittance from air in (0, 1].
    const double t = boundary_power_transmittance(media::air(), m, f);
    EXPECT_GT(t, 0.0) << m.name();
    EXPECT_LE(t, 1.0) << m.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Band, MediaFrequencySweep,
                         ::testing::Values(400e6, 868e6, 915e6, 1.4e9,
                                           2.4e9));

// --- Optimizer determinism: identical seeds give identical plans.
TEST(OptimizerSweep, DeterministicForSeed) {
  OptimizerConfig cfg;
  cfg.num_antennas = 6;
  cfg.mc_trials = 16;
  cfg.iterations = 40;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng a(99), b(99);
  const auto ra = opt.optimize(a);
  const auto rb = opt.optimize(b);
  EXPECT_EQ(ra.offsets_hz, rb.offsets_hz);
  EXPECT_DOUBLE_EQ(ra.score, rb.score);
}

// --- Feasible plans for every antenna count.
class OptimizerFeasibility : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OptimizerFeasibility, AlwaysWithinConstraint) {
  OptimizerConfig cfg;
  cfg.num_antennas = GetParam();
  cfg.mc_trials = 12;
  cfg.iterations = 25;
  cfg.restarts = 1;
  FrequencyOptimizer opt(cfg);
  Rng rng(GetParam() * 31);
  const auto result = opt.optimize(rng);
  const FrequencyPlan plan(915e6, result.offsets_hz);
  EXPECT_EQ(plan.num_antennas(), GetParam());
  EXPECT_TRUE(plan.satisfies(cfg.constraint));
  EXPECT_GT(result.score, std::sqrt(static_cast<double>(GetParam())) - 0.2);
}

INSTANTIATE_TEST_SUITE_P(Counts, OptimizerFeasibility,
                         ::testing::Values(2u, 3u, 4u, 6u, 8u, 10u, 12u));

// --- Plan invariants across truncations.
class PlanTruncation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanTruncation, InvariantsSurviveTruncation) {
  const auto plan = FrequencyPlan::paper_default().truncated(GetParam());
  EXPECT_TRUE(plan.integer_offsets());
  EXPECT_TRUE(plan.satisfies(FlatnessConstraint{}));
  // RMS never grows when dropping the largest offsets.
  EXPECT_LE(plan.rms_offset_hz(),
            FrequencyPlan::paper_default().rms_offset_hz() + 1e-9);
  // Period stays a divisor of 1 s.
  if (GetParam() >= 2) {
    const double period = plan.period_s();
    EXPECT_GT(period, 0.0);
    const double cycles = 1.0 / period;
    EXPECT_NEAR(cycles, std::round(cycles), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanTruncation,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 9u, 10u));

// --- The expected-peak objective is monotone in antenna count for the
// --- paper's plan (adding an antenna never reduces the expected peak).
TEST(ObjectiveSweep, ExpectedPeakMonotoneInN) {
  double prev = 0.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    Rng rng(1234);  // common random numbers across sizes
    const auto plan = FrequencyPlan::paper_default().truncated(n);
    const double e = expected_peak_amplitude(plan.offsets_hz(), 48, rng);
    EXPECT_GT(e, prev - 0.05) << n;
    prev = e;
  }
}

}  // namespace
}  // namespace ivnet
