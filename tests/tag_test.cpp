// Tests for ivnet/tag: the complete battery-free tag device — presets,
// power-up thresholding, downlink decode, backscatter generation.
#include <gtest/gtest.h>

#include <cmath>

#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/tag/tag_device.hpp"

namespace ivnet {
namespace {

std::vector<double> query_envelope(double amplitude, double fs = 800e3) {
  auto env = gen2::pie_encode(gen2::QueryCommand{.q = 0}.encode(),
                              gen2::PieTiming{}, fs, /*with_preamble=*/true);
  for (auto& v : env) v *= amplitude;
  return env;
}

TEST(TagPresets, StandardVsMiniature) {
  const auto std_cfg = standard_tag();
  const auto mini_cfg = miniature_tag();
  EXPECT_EQ(std_cfg.antenna.name(), "AD-238u8");
  EXPECT_EQ(mini_cfg.antenna.name(), "Dash-On-XS");
  EXPECT_EQ(std_cfg.epc.size(), 96u);
  EXPECT_EQ(mini_cfg.epc.size(), 96u);
  // The miniature antenna must capture far less power (Sec. 2.2.2).
  EXPECT_GT(std_cfg.antenna.effective_aperture_m2(915e6, media::air()) /
                mini_cfg.antenna.effective_aperture_m2(915e6, media::air()),
            10.0);
}

TEST(TagDevice, PowerToVoltage) {
  const TagDevice tag(standard_tag());
  // V = sqrt(2 P R): 1 mW into 1500 ohm -> 1.73 V.
  EXPECT_NEAR(tag.power_to_voltage(1e-3), std::sqrt(2.0 * 1e-3 * 1500.0),
              1e-9);
}

TEST(TagDevice, MinPeakVoltageMatchesHarvester) {
  const TagDevice tag(standard_tag());
  EXPECT_NEAR(tag.min_peak_voltage(),
              tag.harvester().min_steady_amplitude(), 1e-12);
  EXPECT_GT(tag.min_peak_voltage(), standard_tag().harvester.vth_v);
}

TEST(TagDevice, StrongQueryPowersDecodesAndReplies) {
  TagDevice tag(standard_tag());
  const auto result = tag.receive_downlink(query_envelope(2.0), 800e3);
  EXPECT_TRUE(result.powered);
  EXPECT_TRUE(result.command_decoded);
  ASSERT_TRUE(result.reply.has_value());
  EXPECT_EQ(result.reply->size(), 16u);  // RN16
  EXPECT_EQ(tag.state_machine().state(), gen2::TagState::kReply);
  EXPECT_GT(tag.rail_voltage(), 0.0);
}

TEST(TagDevice, WeakFieldNoPowerNoReply) {
  TagDevice tag(standard_tag());
  const auto result = tag.receive_downlink(query_envelope(0.2), 800e3);
  EXPECT_FALSE(result.powered);
  EXPECT_FALSE(result.command_decoded);
  EXPECT_FALSE(result.reply.has_value());
  EXPECT_EQ(tag.state_machine().state(), gen2::TagState::kOff);
}

TEST(TagDevice, ThresholdBetweenWeakAndStrong) {
  TagDevice tag(standard_tag());
  const double v_min = tag.min_peak_voltage();
  TagDevice weak_tag(standard_tag());
  const auto weak =
      weak_tag.receive_downlink(query_envelope(v_min * 0.9), 800e3);
  EXPECT_FALSE(weak.powered);
  TagDevice strong_tag(standard_tag());
  const auto strong =
      strong_tag.receive_downlink(query_envelope(v_min * 1.3), 800e3);
  EXPECT_TRUE(strong.powered);
}

TEST(TagDevice, HarvesterStatePersistsAcrossCalls) {
  TagDevice tag(standard_tag());
  // Charge with CW below decode threshold for commands but above power-up.
  const std::vector<double> cw(40000, 2.0);
  tag.receive_downlink(cw, 800e3);
  const double rail_after_charge = tag.rail_voltage();
  EXPECT_GT(rail_after_charge, 1.0);
  tag.power_loss();
  EXPECT_DOUBLE_EQ(tag.rail_voltage(), 0.0);
  EXPECT_EQ(tag.state_machine().state(), gen2::TagState::kOff);
}

TEST(TagDevice, FullQueryAckExchange) {
  TagDevice tag(standard_tag());
  const auto query_result = tag.receive_downlink(query_envelope(2.0), 800e3);
  ASSERT_TRUE(query_result.reply.has_value());
  const auto rn16 = tag.state_machine().last_rn16();

  // Build an ACK envelope (frame-sync, no preamble).
  auto ack_env = gen2::pie_encode(gen2::AckCommand{.rn16 = rn16}.encode(),
                                  gen2::PieTiming{}, 800e3, false);
  for (auto& v : ack_env) v *= 2.0;
  const auto ack_result = tag.receive_downlink(ack_env, 800e3);
  ASSERT_TRUE(ack_result.reply.has_value());
  EXPECT_EQ(ack_result.reply->size(), 128u);  // PC + EPC + CRC16
  EXPECT_EQ(tag.state_machine().state(), gen2::TagState::kAcknowledged);
}

TEST(TagDevice, BackscatterReflectionLevels) {
  const TagDevice tag(standard_tag());
  const gen2::Bits reply = {true, false, true};
  const auto gamma = tag.backscatter_reflection(reply, 800e3);
  ASSERT_FALSE(gamma.empty());
  const double half = standard_tag().backscatter_depth / 2.0;
  for (double g : gamma) {
    EXPECT_NEAR(std::abs(g), half, 1e-12);
  }
}

TEST(TagDevice, BackscatterCarriesFm0Preamble) {
  const TagDevice tag(standard_tag());
  const gen2::Bits reply(16, true);
  const auto gamma = tag.backscatter_reflection(reply, 800e3);
  const auto decoded = gen2::fm0_decode(gamma, 16, standard_tag().blf_hz,
                                        800e3);
  ASSERT_TRUE(decoded.valid);
  EXPECT_EQ(decoded.bits, reply);
}

// Property sweep: decode works across command amplitudes once powered.
class DownlinkAmplitude : public ::testing::TestWithParam<double> {};

TEST_P(DownlinkAmplitude, DecodesWheneverPowered) {
  TagDevice tag(standard_tag());
  const auto result = tag.receive_downlink(query_envelope(GetParam()), 800e3);
  if (result.powered) {
    EXPECT_TRUE(result.command_decoded);
    EXPECT_TRUE(result.reply.has_value());
  } else {
    EXPECT_FALSE(result.reply.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, DownlinkAmplitude,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace ivnet
