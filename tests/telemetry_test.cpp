// Rolling-window telemetry and flight-recorder tests: epoch rotation and
// retention, boundary-anchored window queries, coherent merged views under
// a writer storm, the bounded exemplar store's slowest-K contract, the
// JSONL round-trip replay-exemplar depends on, the byte-stable time-series
// emitter, the anomaly detectors, and the lock-free flight ring (wrap,
// Chrome-trace dump, async-signal-safe fd dump, crash handler).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "ivnet/common/json.hpp"
#include "ivnet/obs/flight_recorder.hpp"
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/telemetry.hpp"

namespace ivnet::obs {
namespace {

// ---------------------------------------------------------------------------
// WindowedCounter

TEST(WindowedCounter, AttributesToEpochsAndMergesWindows) {
  WindowedCounter c(/*epoch_s=*/1.0, /*epochs=*/10);
  c.add(0.2);
  c.add(0.7);
  c.add(1.3, 3);
  c.add(2.5);
  // Query mid-epoch 2: 1 s window = epoch 2 only.
  EXPECT_EQ(c.total_over(1.0, 2.6), 1u);
  // 2 s window = epochs 1..2; 10 s window = everything.
  EXPECT_EQ(c.total_over(2.0, 2.6), 4u);
  EXPECT_EQ(c.total_over(10.0, 2.6), 6u);
  EXPECT_DOUBLE_EQ(c.rate_over(2.0, 2.6), 2.0);
}

TEST(WindowedCounter, ExactBoundaryAnchorsToTheClosedEpoch) {
  // A sampler on the grid (t = k * epoch_s) must see the epoch it just
  // finished, not the brand-new empty one: at now = 1.0 the 1 s window is
  // (0, 1], which is epoch 0's interior.
  WindowedCounter c(1.0, 10);
  c.add(0.25);
  c.add(0.75);
  EXPECT_EQ(c.total_over(1.0, 1.0), 2u);
  // Just past the boundary the new (empty) epoch is the anchor.
  EXPECT_EQ(c.total_over(1.0, 1.5), 0u);
}

TEST(WindowedCounter, RecyclesExpiredEpochsAndDropsAncientAdds) {
  WindowedCounter c(1.0, /*epochs=*/4);
  c.add(0.5, 100);
  // Jump 10 epochs ahead: epoch 0 has left the retained span. Its slot
  // (10 % 4 == 2, not 0 -- use an epoch congruent to 0) must be recycled.
  c.add(8.5, 7);  // epoch 8, slot 0: recycles epoch 0 in place
  EXPECT_EQ(c.total_over(60.0, 8.6), 7u);
  // An add older than the retained span is dropped, not misfiled.
  c.add(0.5, 50);
  EXPECT_EQ(c.total_over(60.0, 8.6), 7u);
}

TEST(WindowedCounter, NegativeAndZeroTimesClampToEpochZero) {
  WindowedCounter c(1.0, 4);
  c.add(-5.0);
  c.add(0.0);
  EXPECT_EQ(c.total_over(1.0, 0.5), 2u);
}

// ---------------------------------------------------------------------------
// WindowedHistogram

TEST(WindowedHistogram, WindowViewMergesOnlyCoveringEpochs) {
  WindowedHistogram h({1.0, 10.0, 100.0}, 1.0, 10);
  h.observe(0.5, 5.0);    // epoch 0, bucket (1, 10]
  h.observe(1.5, 50.0);   // epoch 1, bucket (10, 100]
  h.observe(2.5, 0.5);    // epoch 2, bucket (-inf, 1]
  const Histogram::View last1 = h.view_over(1.0, 2.9);
  EXPECT_EQ(last1.count, 1u);
  EXPECT_DOUBLE_EQ(last1.min, 0.5);
  EXPECT_DOUBLE_EQ(last1.max, 0.5);
  const Histogram::View last3 = h.view_over(3.0, 2.9);
  EXPECT_EQ(last3.count, 3u);
  EXPECT_DOUBLE_EQ(last3.min, 0.5);
  EXPECT_DOUBLE_EQ(last3.max, 50.0);
  ASSERT_EQ(last3.counts.size(), 4u);
  EXPECT_EQ(last3.counts[0], 1u);
  EXPECT_EQ(last3.counts[1], 1u);
  EXPECT_EQ(last3.counts[2], 1u);
  EXPECT_EQ(last3.counts[3], 0u);
}

TEST(WindowedHistogram, QuantileMatchesCumulativeHistogramOnSameData) {
  // Same observations into a windowed histogram (single epoch) and a plain
  // Histogram: the merged view must give the identical quantile, because
  // both go through Histogram::quantile_of.
  const std::vector<double> bounds = Histogram::default_bounds();
  WindowedHistogram wh(bounds, 100.0, 4);  // one wide epoch
  Histogram h(bounds);
  for (int i = 1; i <= 1000; ++i) {
    const double v = static_cast<double>(i) * 0.01;
    wh.observe(0.5, v);
    h.observe(v);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(wh.quantile_over(100.0, 0.5, q), h.quantile(q)) << q;
  }
}

TEST(WindowedHistogram, ViewIsCoherentUnderObserveStorm) {
  // A reader merging the window mid-storm must always see an internally
  // consistent view: bucket counts sum to count, and min/max bracket a
  // non-empty view. (Same contract Histogram::view() pins, extended to
  // the epoch-merged read path.)
  WindowedHistogram h({1.0, 2.0, 5.0}, 1.0, 8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double t = 0.0;
    std::uint64_t state = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const double v = static_cast<double>(state >> 60);  // 0..15
      h.observe(t, v);
      t += 0.001;
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const Histogram::View v = h.view_over(8.0, 8.0);
    std::uint64_t sum = 0;
    for (const std::uint64_t b : v.counts) sum += b;
    ASSERT_EQ(sum, v.count);
    if (v.count > 0) {
      ASSERT_LE(v.min, v.max);
      ASSERT_GE(v.min, 0.0);
      ASSERT_LE(v.max, 15.0);
    }
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------------------------
// ExemplarStore

Exemplar make_exemplar(std::uint64_t id, double t_s, double service_s) {
  Exemplar e;
  e.id = id;
  e.seed = id * 1000;
  e.t_s = t_s;
  e.queue_wait_s = 0.0;
  e.service_s = service_s;
  e.response_hash = id ^ 0xabcdefull;
  return e;
}

TEST(ExemplarStore, KeepsTheKSlowestPerEpoch) {
  ExemplarStore store(/*k_per_epoch=*/2, 1.0, 10);
  store.offer(make_exemplar(1, 0.1, 0.010));
  store.offer(make_exemplar(2, 0.2, 0.030));
  store.offer(make_exemplar(3, 0.3, 0.020));  // evicts id 1 (fastest)
  store.offer(make_exemplar(4, 0.4, 0.005));  // too fast, not kept
  EXPECT_EQ(store.size(), 2u);
  const std::vector<Exemplar> slowest = store.slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].id, 2u);  // 30 ms
  EXPECT_EQ(slowest[1].id, 3u);  // 20 ms
}

TEST(ExemplarStore, TiesKeepIncumbentAndOrderById) {
  ExemplarStore store(1, 1.0, 10);
  store.offer(make_exemplar(7, 0.1, 0.010));
  store.offer(make_exemplar(8, 0.2, 0.010));  // equal latency: incumbent stays
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.slowest()[0].id, 7u);
  // Across epochs, equal latencies order by ascending id.
  store.offer(make_exemplar(3, 1.5, 0.010));
  const std::vector<Exemplar> slowest = store.slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].id, 3u);
  EXPECT_EQ(slowest[1].id, 7u);
}

TEST(ExemplarStore, EpochRotationBoundsMemory) {
  ExemplarStore store(4, 1.0, /*epochs=*/4);
  for (int epoch = 0; epoch < 100; ++epoch) {
    for (int i = 0; i < 10; ++i) {
      store.offer(make_exemplar(static_cast<std::uint64_t>(epoch * 10 + i),
                                static_cast<double>(epoch) + 0.5,
                                0.001 * (i + 1)));
    }
  }
  // At most epochs * k exemplars survive, all from the last 4 epochs.
  EXPECT_LE(store.size(), 16u);
  for (const Exemplar& e : store.slowest()) {
    EXPECT_GE(e.t_s, 96.0);
  }
}

// ---------------------------------------------------------------------------
// Exemplar JSONL round-trip

TEST(ExemplarJson, RoundTripsFullIdentityIncluding64BitFields) {
  Exemplar e;
  e.kind = 2;
  e.trials = 16;
  e.antennas = 4;
  e.id = 123456789;
  // Above 2^53: a double-typed parse would corrupt these. The JSONL format
  // carries them as strings precisely so this round-trips exactly.
  e.seed = 18446744073709551615ull;  // u64 max
  e.response_hash = 0x8000000000000001ull;
  e.snr_db = 14.5;
  e.medium_loss_db = -3.25;
  e.t_s = 12.75;
  e.queue_wait_s = 0.001953125;  // exact binary fractions round-trip
  e.service_s = 0.03125;
  e.stage_s[0] = 0.015625;
  e.stage_s[1] = 0.015625;
  e.stages = 2;

  const std::string line = exemplar_json(e);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line (JSONL)

  Exemplar parsed;
  ASSERT_TRUE(parse_exemplar_line(line, parsed));
  EXPECT_EQ(parsed.kind, e.kind);
  EXPECT_EQ(parsed.trials, e.trials);
  EXPECT_EQ(parsed.antennas, e.antennas);
  EXPECT_EQ(parsed.id, e.id);
  EXPECT_EQ(parsed.seed, e.seed);
  EXPECT_EQ(parsed.response_hash, e.response_hash);
  EXPECT_DOUBLE_EQ(parsed.snr_db, e.snr_db);
  EXPECT_DOUBLE_EQ(parsed.medium_loss_db, e.medium_loss_db);
  EXPECT_DOUBLE_EQ(parsed.queue_wait_s, e.queue_wait_s);
  EXPECT_DOUBLE_EQ(parsed.service_s, e.service_s);
}

TEST(ExemplarJson, ParseRejectsBlankAndForeignLines) {
  Exemplar out;
  EXPECT_FALSE(parse_exemplar_line("", out));
  EXPECT_FALSE(parse_exemplar_line("   ", out));
  EXPECT_FALSE(parse_exemplar_line("# comment", out));
  // A JSON object missing the identity anchors is not an exemplar.
  EXPECT_FALSE(parse_exemplar_line("{\"id\":1,\"kind\":0}", out));
}

// ---------------------------------------------------------------------------
// ServiceTelemetry

TEST(ServiceTelemetry, SampleJsonShapeAndWindowSemantics) {
  ServiceTelemetry t;
  for (int i = 0; i < 30; ++i) {
    const double at = 0.1 + static_cast<double>(i);  // one per second
    t.on_accept(at);
    Exemplar e = make_exemplar(static_cast<std::uint64_t>(i), at, 0.002);
    e.queue_wait_s = 0.001;
    t.on_complete(e);
  }
  t.on_shed(29.1);
  const std::string sample = t.sample_json(29.5);
  // Shape: three windows, fixed field order.
  EXPECT_NE(sample.find("\"t_s\":29.5"), std::string::npos);
  EXPECT_NE(sample.find("\"window_s\":1"), std::string::npos);
  EXPECT_NE(sample.find("\"window_s\":10"), std::string::npos);
  EXPECT_NE(sample.find("\"window_s\":60"), std::string::npos);
  // Window semantics: 1/10/60 s trailing windows see 1/10/30 completions.
  EXPECT_DOUBLE_EQ(json_find_number(sample, "completed", -1.0), 1.0);
  EXPECT_EQ(t.completed().total_over(10.0, 29.5), 10u);
  EXPECT_EQ(t.completed().total_over(60.0, 29.5), 30u);
  EXPECT_EQ(t.shed().total_over(1.0, 29.5), 1u);
}

TEST(ServiceTelemetry, EqualIngestsEmitIdenticalBytes) {
  // The byte-stability contract: two telemetry instances fed the same
  // (timestamped) history produce bit-identical samples and exemplar dumps.
  const auto feed = [](ServiceTelemetry& t) {
    for (int i = 0; i < 100; ++i) {
      const double at = 0.05 * static_cast<double>(i);
      t.on_accept(at);
      Exemplar e = make_exemplar(static_cast<std::uint64_t>(i), at,
                                 0.0001 * static_cast<double>(i % 17));
      t.on_complete(e);
      if (i % 9 == 0) t.on_shed(at);
    }
  };
  ServiceTelemetry a, b;
  feed(a);
  feed(b);
  EXPECT_EQ(a.sample_json(5.0), b.sample_json(5.0));
  EXPECT_EQ(a.exemplars_jsonl(), b.exemplars_jsonl());
  EXPECT_EQ(a.exemplars_json(), b.exemplars_json());
}

TEST(ServiceTelemetry, AnomalyDetectorsFireOnThresholds) {
  TelemetryConfig config;
  config.shed_storm_rate_rps = 50.0;
  config.queue_saturated_p99_s = 0.5;
  ServiceTelemetry t(config);
  EXPECT_FALSE(t.check_anomalies(0.5).any());

  for (int i = 0; i < 60; ++i) t.on_shed(0.3);
  EXPECT_TRUE(t.check_anomalies(0.5).shed_storm);
  EXPECT_FALSE(t.check_anomalies(0.5).queue_saturated);

  Exemplar slow = make_exemplar(1, 0.4, 0.1);
  slow.queue_wait_s = 0.9;
  t.on_complete(slow);
  EXPECT_TRUE(t.check_anomalies(0.5).queue_saturated);
  // Two epochs later the storm has left the 1 s window.
  EXPECT_FALSE(t.check_anomalies(2.5).any());
}

TEST(ServiceTelemetry, AnomalyDetectorsCanBeDisabled) {
  TelemetryConfig config;
  config.shed_storm_rate_rps = 0.0;    // disabled
  config.queue_saturated_p99_s = 0.0;  // disabled
  ServiceTelemetry t(config);
  for (int i = 0; i < 1000; ++i) t.on_shed(0.3);
  Exemplar slow = make_exemplar(1, 0.4, 5.0);
  slow.queue_wait_s = 5.0;
  t.on_complete(slow);
  EXPECT_FALSE(t.check_anomalies(0.5).any());
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorder, DumpIsValidChromeTraceWithPairedStages) {
  FlightRecorder rec(/*rings=*/2, /*slots_per_ring=*/64);
  rec.record(0, FlightEvent::kEnqueue, 0.001, 42);
  rec.record(1, FlightEvent::kDequeue, 0.002, 42);
  rec.record(1, FlightEvent::kStageEnter, 0.003, 42, 0);
  rec.record(1, FlightEvent::kStageExit, 0.004, 42, 0);
  rec.record(1, FlightEvent::kShed, 0.005, 43);
  EXPECT_EQ(rec.total_events(), 5u);

  const std::string trace = rec.dump_json();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  // Timestamps are integer microseconds; 0.003 s -> 3000.
  EXPECT_NE(trace.find("\"ts\":3000"), std::string::npos);
  // tid = ring index: submit events on tid 0, worker events on tid 1.
  EXPECT_NE(trace.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
  // Balanced braces/brackets: a cheap structural validity check that
  // catches truncation without a parser. (python3 validates it in CI.)
  long depth = 0;
  for (const char c : trace) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder rec(1, /*slots_per_ring=*/8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    rec.record(0, FlightEvent::kEnqueue, 0.001 * static_cast<double>(i), i);
  }
  EXPECT_EQ(rec.total_events(), 100u);
  const std::string trace = rec.dump_json();
  // Only the newest 8 survive: id 92 is retained, id 91 is overwritten.
  EXPECT_NE(trace.find("\"id\":99,"), std::string::npos);
  EXPECT_NE(trace.find("\"id\":92,"), std::string::npos);
  EXPECT_EQ(trace.find("\"id\":91,"), std::string::npos);
}

TEST(FlightRecorder, FdDumpMatchesStringDump) {
  FlightRecorder rec(2, 32);
  rec.record(0, FlightEvent::kEnqueue, 0.010, 1);
  rec.record(1, FlightEvent::kBrownout, 0.020, 1, 3);
  rec.record(1, FlightEvent::kRetry, 0.030, 1, 2);
  rec.record(1, FlightEvent::kAnomaly, 0.040, 0, 1);
  const std::string expected = rec.dump_json();

  const std::string path = testing::TempDir() + "flight_fd_dump.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const long written = rec.dump_to_fd(fileno(f));
  std::fclose(f);
  EXPECT_EQ(written, static_cast<long>(expected.size()));

  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  std::string actual(expected.size() + 64, '\0');
  const std::size_t n = std::fread(actual.data(), 1, actual.size(), in);
  std::fclose(in);
  actual.resize(n);
  EXPECT_EQ(actual, expected);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_STREQ(flight_event_name(FlightEvent::kEnqueue), "enqueue");
  EXPECT_STREQ(flight_event_name(FlightEvent::kShed), "shed");
  EXPECT_STREQ(flight_event_name(FlightEvent::kAnomaly), "anomaly");
}

TEST(FlightRecorder, OutOfRangeRingClampsInsteadOfCorrupting) {
  FlightRecorder rec(2, 16);
  rec.record(99, FlightEvent::kEnqueue, 0.001, 7);  // clamps to last ring
  EXPECT_EQ(rec.total_events(), 1u);
  EXPECT_NE(rec.dump_json().find("\"tid\":1"), std::string::npos);
}

TEST(FlightRecorderDeathTest, CrashHandlerDumpsBeforeTheProcessDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  FlightRecorder rec(1, 32);
  rec.record(0, FlightEvent::kEnqueue, 0.001, 11);
  const std::string path = testing::TempDir() + "flight_crash_dump.json";
  std::remove(path.c_str());
  // The child installs the handler and aborts; the handler must write the
  // dump before the (re-raised, default-disposition) signal kills it.
  EXPECT_EXIT(
      {
        FlightRecorder::install_crash_handler(&rec, path.c_str());
        std::abort();
      },
      testing::KilledBySignal(SIGABRT), "");
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "crash handler did not write " << path;
  char buf[64] = {0};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ivnet::obs
