// Compilation test for the umbrella header plus a smoke-level walk across
// the public API it exposes — the snippet a new user would write first.
#include <gtest/gtest.h>

#include "ivnet/ivnet.hpp"

namespace ivnet {
namespace {

TEST(Umbrella, PublicApiSmoke) {
  Rng rng(1);

  // The plan from the paper, validated against its own constraint.
  const auto plan = FrequencyPlan::paper_default();
  EXPECT_TRUE(plan.satisfies(FlatnessConstraint{}));

  // A scene, a tag, one session.
  const auto scene = air_scenario(2.0);
  SessionConfig session;
  session.plan = plan.truncated(8);
  const auto report = run_gen2_session(scene, standard_tag(), session, rng);
  EXPECT_TRUE(report.rn16_decoded);

  // And the deployment planner over the same scene.
  const auto deployment =
      plan_deployment(scene, standard_tag(), DeploymentRequirements{}, rng);
  EXPECT_TRUE(deployment.feasible);
  EXPECT_FALSE(describe(deployment).empty());
}

}  // namespace
}  // namespace ivnet
