// Tests for ivnet/sim/waveform_session: the sample-accurate pipeline, and
// its cross-validation against the analytic experiment runner.
#include <gtest/gtest.h>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/waveform_session.hpp"

namespace ivnet {
namespace {

WaveformSessionConfig fast_config(std::size_t antennas) {
  WaveformSessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(antennas);
  cfg.radio.sample_rate_hz = 800e3;
  cfg.charge_time_s = 0.2;
  return cfg;
}

TEST(WaveformSession, AirSessionSucceeds) {
  Rng rng(1);
  WaveformSession session(fast_config(8), rng);
  const auto report = session.run(air_scenario(2.0), standard_tag(), rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.command_decoded);
  EXPECT_TRUE(report.replied);
  EXPECT_TRUE(report.rn16_decoded);
  EXPECT_GT(report.preamble_correlation, 0.8);
}

TEST(WaveformSession, FarSessionFailsToPower) {
  Rng rng(2);
  WaveformSession session(fast_config(2), rng);
  const auto report = session.run(air_scenario(60.0), standard_tag(), rng);
  EXPECT_FALSE(report.powered);
  EXPECT_FALSE(report.rn16_decoded);
}

TEST(WaveformSession, EnvelopePeakConsistentWithAnalyticScale) {
  // The waveform-path peak envelope must be on the same scale as the
  // analytic single-antenna voltage times the CIB peak bound.
  Rng rng(3);
  const auto scen = air_scenario(3.0);
  const auto tag = standard_tag();
  WaveformSession session(fast_config(4), rng);
  const auto report = session.run(scen, tag, rng);
  const double v1 = single_antenna_voltage(scen, tag, 915e6);
  EXPECT_GT(report.peak_envelope_v, 0.8 * v1);        // at least one antenna
  EXPECT_LT(report.peak_envelope_v, 4.0 * v1 * 1.6);  // bounded by N + fade
}

TEST(WaveformSession, MoreAntennasRaisePeak) {
  Rng rng(4);
  const auto scen = air_scenario(4.0);
  const auto tag = standard_tag();
  double peak2 = 0.0, peak8 = 0.0;
  for (int k = 0; k < 5; ++k) {
    WaveformSession s2(fast_config(2), rng);
    WaveformSession s8(fast_config(8), rng);
    peak2 += s2.run(scen, tag, rng).peak_envelope_v;
    peak8 += s8.run(scen, tag, rng).peak_envelope_v;
  }
  EXPECT_GT(peak8, 2.0 * peak2);
}

TEST(WaveformSession, RepeatedTrialsGiveFreshRn16) {
  Rng rng(5);
  WaveformSession session(fast_config(8), rng);
  const auto a = session.run(air_scenario(2.0), standard_tag(), rng);
  session.new_trial(rng);
  const auto b = session.run(air_scenario(2.0), standard_tag(), rng);
  ASSERT_TRUE(a.rn16_decoded && b.rn16_decoded);
  EXPECT_NE(a.rn16, b.rn16);
}

TEST(WaveformSession, AgreesWithAnalyticRunnerOnPowerUpDecision) {
  // Cross-validation: over several scenarios, the waveform path and the
  // analytic runner must mostly agree on whether the tag powers up.
  Rng rng_a(6), rng_b(6);
  int agreements = 0;
  const int cases = 6;
  const double distances[cases] = {1.0, 3.0, 8.0, 20.0, 45.0, 70.0};
  for (int k = 0; k < cases; ++k) {
    const auto scen = air_scenario(distances[k]);
    WaveformSession session(fast_config(4), rng_a);
    const bool wave_powered =
        session.run(scen, standard_tag(), rng_a).powered;
    const bool analytic_powered =
        can_power_up(scen, standard_tag(),
                     FrequencyPlan::paper_default().truncated(4), 15, 0.5,
                     rng_b);
    agreements += (wave_powered == analytic_powered);
  }
  EXPECT_GE(agreements, cases - 1);  // allow one borderline disagreement
}


TEST(SensorRead, FullDialogueRecoversVitals) {
  Rng rng(10);
  WaveformSession session(fast_config(8), rng);
  const auto report =
      session.run_sensor_read(air_scenario(2.0), standard_tag(), 12.5, rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.inventoried);
  EXPECT_TRUE(report.secured);
  ASSERT_TRUE(report.read_ok);
  EXPECT_EQ(report.commands_sent, 4);  // Query, ACK, Req_RN, Read
  ASSERT_EQ(report.words.size(), 4u);
  // Vitals decode into physiological ranges (porcine gastric sensor).
  EXPECT_GT(report.temperature_c, 37.0);
  EXPECT_LT(report.temperature_c, 40.0);
  EXPECT_GT(report.ph, 1.0);
  EXPECT_LT(report.ph, 4.0);
  EXPECT_GT(report.pressure_mmhg, 2.0);
  EXPECT_LT(report.pressure_mmhg, 20.0);
  EXPECT_EQ(report.words[3], 1u);  // first published sample
}

TEST(SensorRead, FailsCleanlyWhenUnpowered) {
  Rng rng(11);
  WaveformSession session(fast_config(2), rng);
  const auto report = session.run_sensor_read(air_scenario(60.0),
                                              standard_tag(), 0.0, rng);
  EXPECT_FALSE(report.powered);
  EXPECT_FALSE(report.inventoried);
  EXPECT_FALSE(report.read_ok);
  EXPECT_EQ(report.commands_sent, 0);
}

TEST(SensorRead, SubcutaneousSwinePlacementWorks) {
  Rng rng(12);
  WaveformSessionConfig cfg = fast_config(8);
  cfg.reader.averaging_periods = 10;
  WaveformSession session(cfg, rng);
  const auto report = session.run_sensor_read(
      swine_subcutaneous_scenario(calib::kSwineStandoffM), standard_tag(),
      3.0, rng);
  EXPECT_TRUE(report.powered);
  EXPECT_TRUE(report.read_ok);
}

}  // namespace
}  // namespace ivnet
