#!/usr/bin/env bash
# The CI pipeline, runnable locally: default build + full test suite, the
# same suite under AddressSanitizer and ThreadSanitizer (the determinism
# tests exercise 1/2/8-thread pools, so TSan sees real contention), and —
# when gcovr is installed — a line-coverage floor on the protocol and
# impairment layers (src/ivnet/gen2, src/ivnet/impair).
#
# Knobs:
#   JOBS                  parallel build jobs      (default: nproc)
#   COVERAGE_LINE_FLOOR   gcovr --fail-under-line  (default: 80)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
COVERAGE_LINE_FLOOR="${COVERAGE_LINE_FLOOR:-80}"

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure
}

echo "=== ci: default build ==="
build_and_test build-ci

echo "=== ci: AddressSanitizer ==="
build_and_test build-asan -DIVNET_SANITIZE=address

echo "=== ci: ThreadSanitizer ==="
build_and_test build-tsan -DIVNET_SANITIZE=thread

# Coverage is optional: the floor only gates where the tool exists. The
# container used for growth runs has no gcovr and must still pass CI.
if command -v gcovr >/dev/null 2>&1; then
  echo "=== ci: coverage (line floor ${COVERAGE_LINE_FLOOR}%) ==="
  build_and_test build-cov -DIVNET_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
  gcovr --root . \
        --filter 'src/ivnet/gen2/' \
        --filter 'src/ivnet/impair/' \
        --object-directory build-cov \
        --fail-under-line "${COVERAGE_LINE_FLOOR}" \
        --print-summary
else
  echo "=== ci: gcovr not installed, skipping coverage gate ==="
fi

echo "=== ci: all stages passed ==="
