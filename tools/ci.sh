#!/usr/bin/env bash
# The CI pipeline, runnable locally: default build + full test suite, the
# same suite under AddressSanitizer and ThreadSanitizer (the determinism
# tests exercise 1/2/8-thread pools, so TSan sees real contention), a
# Debug spot-check of the DSP input-validation, campaign, and service
# suites (the other legs are NDEBUG builds), an inventory-service bench
# (digest-identity gated, telemetry overhead gated <= 3%) plus a bounded
# 10k-request soak through `ivnet serve` that must shed nothing while
# unsaturated — run with live telemetry attached: the time-series JSONL is
# schema-checked, the flight-recorder dump is validated as Chrome trace
# JSON, and every captured tail-latency exemplar must replay to its
# recorded response hash — a large-N planner stage (delta evaluator
# memcmp-gated against the full rebuild and a naive double-precision
# oracle, then a plan/re-plan pair across fresh processes whose stored plan
# JSONs must cmp equal with zero evaluations on the hit) — a small
# traced sweep whose metrics/trace artifacts are archived and smoke-checked
# as JSON, a campaign kill-and-resume determinism check (SIGKILL mid-run,
# resume from the journal, byte-compare against an uninterrupted run across
# 1/2/8-thread pools), and — when gcovr is installed — a line-coverage
# floor on the
# protocol, impairment, and observability layers (src/ivnet/gen2,
# src/ivnet/impair, src/ivnet/obs).
#
# Knobs:
#   JOBS                  parallel build jobs      (default: nproc)
#   COVERAGE_LINE_FLOOR   gcovr --fail-under-line  (default: 80)
#   IVNET_COVERAGE        ON forces the coverage stage: missing gcovr is
#                         then a hard failure instead of a skip
#   ARTIFACT_DIR          where sweep artifacts land (default: build-ci/artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
COVERAGE_LINE_FLOOR="${COVERAGE_LINE_FLOOR:-80}"
ARTIFACT_DIR="${ARTIFACT_DIR:-build-ci/artifacts}"

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure
}

echo "=== ci: default build ==="
build_and_test build-ci

echo "=== ci: DSP kernel before/after table (non-gating) ==="
# Times the polyphase/three-region fast paths against the naive oracles
# they replaced (signal/naive_dsp.hpp) and prints the speedup table.
# Informational only: timings on shared CI hardware are too noisy to gate
# on, so a failure here never fails the pipeline.
mkdir -p "$ARTIFACT_DIR"
if ! build-ci/bench/bench_kernels_json \
    "$ARTIFACT_DIR/BENCH_kernels.json" "$ARTIFACT_DIR/BENCH_dsp.json"; then
  echo "ci: DSP bench failed (non-gating), continuing" >&2
elif command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/BENCH_dsp.json" <<'PY' || \
      echo "ci: DSP bench table parse failed (non-gating), continuing" >&2
import json, sys
bench = json.load(open(sys.argv[1]))
rows = bench["results"]
print(f"ci: DSP fast path vs naive oracle ({bench['samples']} samples)")
print(f"  {'kernel':<18} {'naive ns/op':>14} {'fast ns/op':>14} {'speedup':>9}")
for r in rows:
    print(f"  {r['name']:<18} {r['naive_ns_per_op']:>14.0f} "
          f"{r['fast_ns_per_op']:>14.0f} {r['speedup']:>8.2f}x")
PY
fi

echo "=== ci: batched pipeline sessions/sec (non-gating timings) ==="
# Runs the scalar trial loop and the batched lockstep pipeline (batch
# 1/8/32/128 x threads 1/2/8) over the same x13 workload and archives the
# sessions/sec table. Timings are informational on shared hardware, but the
# bench also byte-compares every configuration's sweep JSON against the
# scalar single-thread reference — an identity mismatch is a real bug, so
# that (exit code 1) still fails the pipeline.
if ! build-ci/bench/bench_throughput "$ARTIFACT_DIR/BENCH_throughput.json"; then
  echo "ci: batched pipeline output differs from scalar oracle" >&2
  exit 1
fi

echo "=== ci: service latency/saturation bench (non-gating timings) ==="
# Inventory service under the MMPP load harness: closed-loop saturation plus
# an open-loop offered-load sweep at 1/2/8 workers. Latency numbers are
# informational on shared hardware; the bench's response-digest identity
# check (same request stream -> same response bytes at every pool width and
# on a rerun) is a correctness gate, so its exit code fails the pipeline.
if ! build-ci/bench/bench_service "$ARTIFACT_DIR/BENCH_service.json" \
    --timeline; then
  echo "ci: service responses diverged across worker counts" >&2
  exit 1
fi
# Telemetry overhead gate: the full observability stack (rolling windows +
# exemplar store + flight recorder) must cost <= 3% of saturation
# throughput at the widest pool (interleaved best-of-3 inside the bench).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/BENCH_service.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
oh = bench["telemetry_overhead"]
print(f"ci: telemetry overhead {oh['overhead_pct']:.2f}% "
      f"({oh['telemetry_off_rps']:.0f} -> {oh['telemetry_on_rps']:.0f} req/s "
      f"at {oh['workers']} workers)")
assert oh["overhead_pct"] <= 3.0, \
    f"telemetry overhead {oh['overhead_pct']:.2f}% exceeds the 3% gate"
timeline = bench["latency_timeline"]
assert len(timeline) == 20 and sum(b["count"] for b in timeline) > 0, \
    "latency timeline missing or empty"
PY
fi

echo "=== ci: service soak (bounded, 10k requests, 8 workers) ==="
# Run-to-completion soak through `ivnet serve`: a 2-state MMPP schedule well
# below the 1-worker saturation point, deep queue. Unsaturated open-loop
# serving must shed NOTHING and complete everything it accepted (the
# graceful-shutdown drain guarantee); either miss fails the pipeline.
build-ci/tools/ivnet serve --workers 8 --queue-depth 4096 \
    --requests 10000 --rate 3000 --trials 1 --seed 41 --json \
    --telemetry-out "$ARTIFACT_DIR/SOAK_series.jsonl" \
    --exemplars-out "$ARTIFACT_DIR/SOAK_exemplars.jsonl" \
    --flight-out "$ARTIFACT_DIR/SOAK_flight.json" \
    > "$ARTIFACT_DIR/SOAK_service.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/SOAK_service.json" <<'PY'
import json, sys
soak = json.load(open(sys.argv[1]))
assert soak["submitted"] == 10000, soak["submitted"]
assert soak["rejected"] == 0, f"unsaturated soak shed {soak['rejected']} requests"
assert soak["completed"] == soak["accepted"] == 10000, \
    f"drain lost requests: {soak['completed']}/{soak['accepted']}"
print(f"ci: soak {soak['completed']}/10000 completed, 0 rejected, "
      f"p99 wait {soak['queue_wait_p99_s']*1e3:.2f} ms, "
      f"digest {soak['digest']}")
PY
  # Time-series schema: every line is a standalone JSON record carrying the
  # three trailing windows with the full stat set, counts consistent.
  python3 - "$ARTIFACT_DIR/SOAK_series.jsonl" <<'PY'
import json, sys
required = {"window_s", "accepted", "completed", "shed", "throughput_rps",
            "shed_rps", "queue_wait_p50_s", "queue_wait_p99_s",
            "service_p50_s", "service_p99_s"}
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "telemetry series is empty"
total = 0
for line in lines:
    rec = json.loads(line)
    assert rec["t_s"] >= 0, rec
    windows = rec["windows"]
    assert [w["window_s"] for w in windows] == [1, 10, 60], windows
    for w in windows:
        assert required <= set(w), sorted(required - set(w))
        assert w["shed"] == 0, f"soak shed inside a window: {w}"
    total = max(total, windows[2]["completed"])
print(f"ci: telemetry series has {len(lines)} samples, "
      f"peak 60s-window completions {total}")
PY
  # Flight recorder: the forced dump must be valid Chrome trace JSON with
  # events from the submit ring and the worker rings.
  python3 - "$ARTIFACT_DIR/SOAK_flight.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "flight dump has no events"
tids = {e["tid"] for e in events}
assert 0 in tids and len(tids) > 1, f"expected submit+worker rings, got {tids}"
kinds = {e["name"] for e in events}
assert "enqueue" in kinds and "dequeue" in kinds, kinds
print(f"ci: flight dump has {len(events)} events across {len(tids)} rings")
PY
else
  grep -q '"rejected":0' "$ARTIFACT_DIR/SOAK_service.json" || {
    echo "ci: unsaturated soak shed requests" >&2
    exit 1
  }
  grep -q '"completed":10000' "$ARTIFACT_DIR/SOAK_service.json" || {
    echo "ci: soak did not complete all 10000 requests" >&2
    exit 1
  }
fi

echo "=== ci: large-N planner delta-eval gates ==="
# bench_x1 sweeps N in {10, 32, 64, 128}: the delta evaluator's score must
# be memcmp-identical to the retained full rebuild AND agree with an
# independent double-precision naive evaluation to 1e-6 relative — an exit
# code 1 is a correctness bug. Speedup/anneal timings are informational.
if ! build-ci/bench/bench_x1_freq_optimizer "$ARTIFACT_DIR/BENCH_planner.json"; then
  echo "ci: delta evaluator diverged from the full/naive oracle" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/BENCH_planner.json" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["gates_ok"], "planner score-identity gate failed"
print(f"ci: planner sweep ({bench['mc_trials']} trials)")
print(f"  {'N':>4} {'steps':>7} {'naive ms/eval':>14} {'delta ms/move':>14} "
      f"{'speedup':>8} {'anneal s':>9}")
for r in bench["rows"]:
    assert r["memcmp_identical"], f"delta != full rebuild at N={r['n']}"
    assert r["naive_rel_err"] <= 1e-6, f"naive disagreement at N={r['n']}"
    print(f"  {r['n']:>4} {r['steps']:>7} {r['naive_eval_s']*1e3:>14.2f} "
          f"{r['delta_move_s']*1e3:>14.3f} {r['speedup']:>7.0f}x "
          f"{r['anneal_s']:>9.2f}")
PY
fi

echo "=== ci: plan store re-plan determinism ==="
# Plan, then re-plan the identical scenario in a FRESH process sharing the
# journal: run two must be a cache hit (zero objective evaluations — no
# planner.evals counter at all) and its --out plan JSON must be
# byte-identical to run one's.
PLAN_DIR="$ARTIFACT_DIR/plans"
mkdir -p "$PLAN_DIR"
rm -f "$PLAN_DIR/plans.jsonl"
build-ci/tools/ivnet plan --antennas 24 --trials 8 --moves 60 --restarts 2 \
    --journal "$PLAN_DIR/plans.jsonl" --out "$PLAN_DIR/plan_first.json" \
    --metrics-out "$PLAN_DIR/plan_first_metrics.json"
build-ci/tools/ivnet plan --antennas 24 --trials 8 --moves 60 --restarts 2 \
    --journal "$PLAN_DIR/plans.jsonl" --out "$PLAN_DIR/plan_second.json" \
    --metrics-out "$PLAN_DIR/plan_second_metrics.json"
cmp "$PLAN_DIR/plan_first.json" "$PLAN_DIR/plan_second.json" || {
  echo "ci: re-planned JSON differs from the first plan" >&2
  exit 1
}
grep -q 'planner.cache.misses' "$PLAN_DIR/plan_first_metrics.json" || {
  echo "ci: first plan did not record a cache miss" >&2
  exit 1
}
grep -q 'planner.evals' "$PLAN_DIR/plan_first_metrics.json" || {
  echo "ci: first plan recorded no objective evaluations" >&2
  exit 1
}
grep -q 'planner.cache.hits' "$PLAN_DIR/plan_second_metrics.json" || {
  echo "ci: re-plan was not served from the plan store" >&2
  exit 1
}
if grep -q 'planner.evals' "$PLAN_DIR/plan_second_metrics.json"; then
  echo "ci: re-plan spent objective evaluations despite the store hit" >&2
  exit 1
fi
echo "ci: re-plan served from the journal, 0 evaluations, byte-identical plan"

echo "=== ci: exemplar deterministic replay ==="
# Responses are pure functions of (request, seed): every tail-latency
# exemplar the soak captured must re-execute to its recorded response hash
# (replay-exemplar exits non-zero on any mismatch).
test -s "$ARTIFACT_DIR/SOAK_exemplars.jsonl" || {
  echo "ci: soak captured no exemplars" >&2
  exit 1
}
build-ci/tools/ivnet replay-exemplar --in "$ARTIFACT_DIR/SOAK_exemplars.jsonl"

echo "=== ci: AddressSanitizer ==="
build_and_test build-asan -DIVNET_SANITIZE=address

echo "=== ci: ThreadSanitizer ==="
build_and_test build-tsan -DIVNET_SANITIZE=thread

echo "=== ci: Debug spot-check (input validation with asserts enabled) ==="
# The default/ASan/TSan legs build RelWithDebInfo (NDEBUG), which is where
# the fir design validation used to vanish. Pin that the throwing contract
# and the DSP/campaign suites hold in an assert-enabled Debug build too.
cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
cmake --build build-debug -j "$JOBS" --target signal_test dsp_test dsp_fastpath_test campaign_test batch_pipeline_test svc_test loadgen_test obs_test telemetry_test freq_planner_test
ctest --test-dir build-debug --output-on-failure -R 'signal_test|dsp_test|dsp_fastpath_test|campaign_test|batch_pipeline_test|svc_test|loadgen_test|obs_test|telemetry_test|freq_planner_test'

echo "=== ci: traced sweep artifacts ==="
mkdir -p "$ARTIFACT_DIR"
build-ci/tools/ivnet vitals --rounds 4 \
    --metrics-out "$ARTIFACT_DIR/metrics.json" \
    --trace-out "$ARTIFACT_DIR/trace.json" --trace-clock sim \
    > "$ARTIFACT_DIR/vitals.txt"
for artifact in metrics.json trace.json; do
  test -s "$ARTIFACT_DIR/$artifact" || {
    echo "ci: missing artifact $ARTIFACT_DIR/$artifact" >&2
    exit 1
  }
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/metrics.json" "$ARTIFACT_DIR/trace.json" <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
trace = json.load(open(sys.argv[2]))
assert set(metrics) >= {"counters", "gauges", "histograms"}, metrics.keys()
assert trace["traceEvents"], "trace has no events"
print(f"ci: metrics has {len(metrics['counters'])} counters, "
      f"trace has {len(trace['traceEvents'])} events")
PY
else
  echo "ci: python3 not installed, artifacts archived but not parse-checked"
fi

echo "=== ci: campaign kill-and-resume determinism ==="
# A campaign SIGKILL'd mid-run must resume from its journal and produce
# byte-identical final JSON to an uninterrupted run — across different
# IVNET_THREADS on every leg (1 for the reference, 2 for the killed run,
# 8 for the resume). Wherever the kill lands (before, between, or after
# cell journal appends), the resumed bytes must match. The resume leg runs
# through the batched lockstep pipeline (IVNET_BATCH=32), so the final cmp
# also pins batched-vs-scalar identity on a live campaign.
CAMPAIGN_DIR="$ARTIFACT_DIR/campaign"
mkdir -p "$CAMPAIGN_DIR"
CAMPAIGN_TRIALS="${CAMPAIGN_TRIALS:-12000}"
IVNET_THREADS=1 build-ci/tools/ivnet campaign run --bench fig9 \
    --trials "$CAMPAIGN_TRIALS" --fresh \
    --journal "$CAMPAIGN_DIR/ref.jsonl" --out "$CAMPAIGN_DIR/ref.json"
IVNET_THREADS=2 build-ci/tools/ivnet campaign run --bench fig9 \
    --trials "$CAMPAIGN_TRIALS" --fresh \
    --journal "$CAMPAIGN_DIR/killed.jsonl" \
    --out "$CAMPAIGN_DIR/killed.json" &
victim=$!
sleep 0.4
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
build-ci/tools/ivnet campaign status --bench fig9 \
    --trials "$CAMPAIGN_TRIALS" --journal "$CAMPAIGN_DIR/killed.jsonl"
IVNET_THREADS=8 IVNET_BATCH=32 build-ci/tools/ivnet campaign resume --bench fig9 \
    --trials "$CAMPAIGN_TRIALS" \
    --journal "$CAMPAIGN_DIR/killed.jsonl" \
    --out "$CAMPAIGN_DIR/resumed.json" \
    --metrics-out "$CAMPAIGN_DIR/resume_metrics.json"
cmp "$CAMPAIGN_DIR/ref.json" "$CAMPAIGN_DIR/resumed.json" || {
  echo "ci: resumed campaign JSON differs from uninterrupted run" >&2
  exit 1
}
grep -q 'campaign.cells.resumed' "$CAMPAIGN_DIR/resume_metrics.json" || {
  echo "ci: resume metrics snapshot missing campaign counters" >&2
  exit 1
}
echo "ci: kill-and-resume output byte-identical across 1/2/8 threads"

echo "=== ci: distributed campaign shard fleet ==="
# Three cooperating worker processes split one x13 campaign through
# per-shard journals and the fcntl-locked claims file. One worker is
# SIGKILL'd mid-run; the survivors steal what they can, the coordinator
# resume fills the durable gap, and the merged JSON must stay
# byte-identical to the single-process reference at every thread count.
SHARD_DIR="$ARTIFACT_DIR/campaign-shards"
mkdir -p "$SHARD_DIR"
SHARD_TRIALS="${SHARD_TRIALS:-24}"
IVNET_THREADS=1 build-ci/tools/ivnet campaign run --bench x13 \
    --trials "$SHARD_TRIALS" --fresh \
    --journal "$SHARD_DIR/ref.jsonl" --out "$SHARD_DIR/ref.json"
rm -f "$SHARD_DIR"/fleet.jsonl.shard*.jsonl "$SHARD_DIR/fleet.jsonl.claims"
for k in 0 1 2; do
  IVNET_THREADS=2 build-ci/tools/ivnet campaign worker --bench x13 \
      --trials "$SHARD_TRIALS" --journal "$SHARD_DIR/fleet.jsonl" \
      --shards 3 --shard "$k" &
  eval "worker$k=\$!"
done
sleep 0.15
kill -9 "$worker1" 2>/dev/null || true
wait "$worker0" 2>/dev/null || true
wait "$worker1" 2>/dev/null || true
wait "$worker2" 2>/dev/null || true
build-ci/tools/ivnet campaign status --bench x13 --trials "$SHARD_TRIALS" \
    --journal "$SHARD_DIR/fleet.jsonl" --shards 3
for threads in 1 2 8; do
  IVNET_THREADS=$threads build-ci/tools/ivnet campaign resume --bench x13 \
      --trials "$SHARD_TRIALS" --journal "$SHARD_DIR/fleet.jsonl" \
      --shards 3 --out "$SHARD_DIR/merged_$threads.json"
  cmp "$SHARD_DIR/ref.json" "$SHARD_DIR/merged_$threads.json" || {
    echo "ci: sharded campaign diverged at IVNET_THREADS=$threads" >&2
    exit 1
  }
done
build-ci/tools/ivnet campaign merge --bench x13 --trials "$SHARD_TRIALS" \
    --journal "$SHARD_DIR/fleet.jsonl" --shards 3 \
    --out "$SHARD_DIR/merged_only.json"
cmp "$SHARD_DIR/ref.json" "$SHARD_DIR/merged_only.json" || {
  echo "ci: campaign merge output differs from the single-process run" >&2
  exit 1
}
echo "ci: 3-shard fleet byte-identical across 1/2/8 threads after worker SIGKILL"

# Coverage gates only where the tool exists — the growth container has no
# gcovr — unless the caller asked for coverage explicitly, in which case a
# missing gcovr is a loud failure rather than a silent skip.
if command -v gcovr >/dev/null 2>&1; then
  echo "=== ci: coverage (line floor ${COVERAGE_LINE_FLOOR}%) ==="
  build_and_test build-cov -DIVNET_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
  gcovr --root . \
        --filter 'src/ivnet/gen2/' \
        --filter 'src/ivnet/impair/' \
        --filter 'src/ivnet/obs/' \
        --object-directory build-cov \
        --fail-under-line "${COVERAGE_LINE_FLOOR}" \
        --print-summary
elif [[ "${IVNET_COVERAGE:-}" == "ON" ]]; then
  echo "ci: IVNET_COVERAGE=ON but gcovr is not installed" >&2
  exit 1
else
  echo "=== ci: gcovr not installed, skipping coverage gate ==="
fi

echo "=== ci: all stages passed ==="
