#!/usr/bin/env bash
# The CI pipeline, runnable locally: default build + full test suite, the
# same suite under AddressSanitizer and ThreadSanitizer (the determinism
# tests exercise 1/2/8-thread pools, so TSan sees real contention), a small
# traced sweep whose metrics/trace artifacts are archived and smoke-checked
# as JSON, and — when gcovr is installed — a line-coverage floor on the
# protocol, impairment, and observability layers (src/ivnet/gen2,
# src/ivnet/impair, src/ivnet/obs).
#
# Knobs:
#   JOBS                  parallel build jobs      (default: nproc)
#   COVERAGE_LINE_FLOOR   gcovr --fail-under-line  (default: 80)
#   IVNET_COVERAGE        ON forces the coverage stage: missing gcovr is
#                         then a hard failure instead of a skip
#   ARTIFACT_DIR          where sweep artifacts land (default: build-ci/artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
COVERAGE_LINE_FLOOR="${COVERAGE_LINE_FLOOR:-80}"

build_and_test() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure
}

echo "=== ci: default build ==="
build_and_test build-ci

echo "=== ci: AddressSanitizer ==="
build_and_test build-asan -DIVNET_SANITIZE=address

echo "=== ci: ThreadSanitizer ==="
build_and_test build-tsan -DIVNET_SANITIZE=thread

echo "=== ci: traced sweep artifacts ==="
ARTIFACT_DIR="${ARTIFACT_DIR:-build-ci/artifacts}"
mkdir -p "$ARTIFACT_DIR"
build-ci/tools/ivnet vitals --rounds 4 \
    --metrics-out "$ARTIFACT_DIR/metrics.json" \
    --trace-out "$ARTIFACT_DIR/trace.json" --trace-clock sim \
    > "$ARTIFACT_DIR/vitals.txt"
for artifact in metrics.json trace.json; do
  test -s "$ARTIFACT_DIR/$artifact" || {
    echo "ci: missing artifact $ARTIFACT_DIR/$artifact" >&2
    exit 1
  }
done
if command -v python3 >/dev/null 2>&1; then
  python3 - "$ARTIFACT_DIR/metrics.json" "$ARTIFACT_DIR/trace.json" <<'PY'
import json, sys
metrics = json.load(open(sys.argv[1]))
trace = json.load(open(sys.argv[2]))
assert set(metrics) >= {"counters", "gauges", "histograms"}, metrics.keys()
assert trace["traceEvents"], "trace has no events"
print(f"ci: metrics has {len(metrics['counters'])} counters, "
      f"trace has {len(trace['traceEvents'])} events")
PY
else
  echo "ci: python3 not installed, artifacts archived but not parse-checked"
fi

# Coverage gates only where the tool exists — the growth container has no
# gcovr — unless the caller asked for coverage explicitly, in which case a
# missing gcovr is a loud failure rather than a silent skip.
if command -v gcovr >/dev/null 2>&1; then
  echo "=== ci: coverage (line floor ${COVERAGE_LINE_FLOOR}%) ==="
  build_and_test build-cov -DIVNET_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
  gcovr --root . \
        --filter 'src/ivnet/gen2/' \
        --filter 'src/ivnet/impair/' \
        --filter 'src/ivnet/obs/' \
        --object-directory build-cov \
        --fail-under-line "${COVERAGE_LINE_FLOOR}" \
        --print-summary
elif [[ "${IVNET_COVERAGE:-}" == "ON" ]]; then
  echo "ci: IVNET_COVERAGE=ON but gcovr is not installed" >&2
  exit 1
else
  echo "=== ci: gcovr not installed, skipping coverage gate ==="
fi

echo "=== ci: all stages passed ==="
