// ivnet — command-line front end to the IVN reproduction.
//
//   ivnet plan     [--antennas N] [--trials K] [--moves M] [--restarts R]
//                  [--seed S] [--journal FILE] [--out FILE] [--json]
//                  run the Eq. 10 planner through the content-hashed plan
//                  store (an identical request is a cache hit: zero
//                  objective evaluations, byte-identical stored plan)
//   ivnet media    [--json]                   dielectric property table
//   ivnet range    --tag std|mini --medium air|water [--antennas N] [--json]
//   ivnet session  --scenario air|water|gastric|subcut [--tag std|mini]
//                  [--antennas N] [--distance M | --depth M] [--json]
//   ivnet vitals   [--rounds K]               sensor-read dialogues (swine)
//   ivnet safety   [--antennas N] [--duty D] [--json]
//   ivnet campaign run|status|resume|worker|merge --bench fig9|fig13|x13
//                  [--journal FILE] [--out FILE] [--trials N] [--fresh]
//                  [--shards N] [--shard K]   (worker: one shard's process)
//   ivnet serve    [--workers N] [--queue-depth D] [--requests N|--duration S]
//                  [--rate R] [--trials K] [--closed-loop [C]] [--json]
//                  [--telemetry-out FILE] [--telemetry-interval S]
//                  [--telemetry-clock sim|wall] [--exemplars-out FILE]
//                  [--flight-out FILE] [--follow]
//   ivnet replay-exemplar --in FILE [--id N | --index K] [--json]
//   ivnet help
//
// Global flags (any command):
//   --metrics-out FILE     write a metrics-registry snapshot (JSON)
//   --trace-out FILE       write a Chrome trace_event file (load in
//                          chrome://tracing or ui.perfetto.dev)
//   --trace-clock sim|wall trace clock domain (default wall)
//   --batch-size K         run trial sweeps through the batched lockstep
//                          pipeline, K trials per batch (1 = scalar path;
//                          results are bitwise-identical either way)
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/obs/flight_recorder.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/obs/telemetry.hpp"
#include "ivnet/sim/batch_pipeline.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/campaign.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/sim/planner.hpp"
#include "ivnet/sim/safety.hpp"
#include "ivnet/sim/waveform_session.hpp"
#include "ivnet/svc/loadgen.hpp"
#include "ivnet/svc/service.hpp"

namespace {

using namespace ivnet;

struct Args {
  std::string command;
  std::vector<std::string> positional;  ///< non-flag tokens after the command
  std::map<std::string, std::string> flags;

  bool has(const std::string& name) const { return flags.count(name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double get_num(const std::string& name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional.push_back(token);  // e.g. `campaign run`
      continue;
    }
    token.erase(0, 2);
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.flags[token] = argv[++i];
    } else {
      args.flags[token] = "1";
    }
  }
  return args;
}

TagConfig tag_from(const Args& args) {
  return args.get("tag", "std") == "mini" ? miniature_tag() : standard_tag();
}

bool write_file(const std::string& path, const std::string& text);

int cmd_plan(const Args& args) {
  // The Eq. 10 search through the plan store: with --journal, an identical
  // request is served from the journal with zero objective evaluations (and
  // a byte-identical stored plan record — `--out` writes it verbatim, so
  // two runs' outputs `cmp` equal). Without --journal the plan is still
  // memoized for this process.
  FrequencyPlanRequest request;
  request.antennas = static_cast<std::size_t>(
      std::max(2.0, args.get_num("antennas", 10)));
  request.mc_trials = static_cast<std::size_t>(
      std::max(1.0, args.get_num("trials", 48)));
  request.moves = static_cast<std::size_t>(
      std::max(1.0, args.get_num("moves", 400)));
  request.restarts = static_cast<std::size_t>(
      std::max(1.0, args.get_num("restarts", 2)));
  request.seed = static_cast<std::uint64_t>(args.get_num("seed", 7));

  FrequencyPlanOutcome plan;
  try {
    plan = plan_frequencies(request, args.get("journal", ""));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ivnet plan: %s\n", e.what());
    return 1;
  }

  const std::string out = args.get("out", "");
  if (!out.empty() && !write_file(out, plan.plan_json + "\n")) return 1;

  char hash_hex[32];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(plan.scenario_hash));
  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("antennas", request.antennas);
    w.key("offsets_hz").begin_array();
    for (double f : plan.offsets_hz) w.value(f);
    w.end_array();
    w.field("expected_peak_amplitude", plan.score);
    w.field("rms_hz", plan.rms_hz);
    w.field("rms_limit_hz", request.constraint.rms_limit_hz());
    w.field("evaluations", plan.evaluations);
    w.field("cached", plan.cached);
    w.field("scenario_hash", hash_hex);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("offsets [Hz]:");
  for (double f : plan.offsets_hz) std::printf(" %.0f", f);
  std::printf("\nE[peak] = %.2f / %zu, RMS %.1f Hz (limit %.1f Hz)\n",
              plan.score, request.antennas, plan.rms_hz,
              request.constraint.rms_limit_hz());
  std::printf("plan %s: %s (%zu evaluations)\n", hash_hex,
              plan.cached ? "served from plan store" : "computed",
              plan.evaluations);
  return 0;
}

int cmd_media(const Args& args) {
  const Medium list[] = {media::air(),     media::water(),
                         media::gastric_fluid(), media::intestinal_fluid(),
                         media::steak(),   media::bacon(),
                         media::chicken(), media::skin(),
                         media::fat(),     media::muscle(),
                         media::stomach_wall()};
  const double f = calib::kCibCenterHz;
  if (args.has("json")) {
    JsonWriter w;
    w.begin_array();
    for (const auto& m : list) {
      w.begin_object();
      w.field("name", m.name());
      w.field("eps_r", m.eps_r());
      w.field("sigma_s_per_m", m.sigma());
      w.field("alpha_np_per_m", m.alpha(f));
      w.field("loss_db_per_cm", m.power_loss_db_per_cm(f));
      w.end_object();
    }
    w.end_array();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("%-18s %-8s %-10s %-14s %s\n", "medium", "eps_r", "sigma",
              "alpha [Np/m]", "loss [dB/cm]");
  for (const auto& m : list) {
    std::printf("%-18s %-8.1f %-10.2f %-14.1f %.2f\n", m.name().c_str(),
                m.eps_r(), m.sigma(), m.alpha(f),
                m.power_loss_db_per_cm(f));
  }
  return 0;
}

int cmd_range(const Args& args) {
  const auto tag = tag_from(args);
  const auto n = static_cast<std::size_t>(args.get_num("antennas", 8));
  const auto plan = FrequencyPlan::paper_default().truncated(n);
  Rng rng(17);
  const bool water = args.get("medium", "air") == "water";
  const double result = water ? max_water_depth(tag, plan, 15, rng)
                              : max_air_range(tag, plan, 15, rng, 120.0);
  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("tag", tag.antenna.name());
    w.field("medium", water ? "water" : "air");
    w.field("antennas", n);
    w.field(water ? "max_depth_m" : "max_range_m", result);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else if (water) {
    std::printf("%s, %zu antennas: max water depth %.1f cm\n",
                tag.antenna.name().c_str(), n, result * 100.0);
  } else {
    std::printf("%s, %zu antennas: max air range %.1f m\n",
                tag.antenna.name().c_str(), n, result);
  }
  return 0;
}

int cmd_session(const Args& args) {
  const auto tag = tag_from(args);
  const auto n = static_cast<std::size_t>(args.get_num("antennas", 8));
  const std::string kind = args.get("scenario", "air");
  Scenario scen;
  if (kind == "water") {
    scen = water_tank_scenario(args.get_num("depth", 0.05),
                               calib::kRangeSetupStandoffM);
  } else if (kind == "gastric") {
    scen = swine_gastric_scenario(calib::kSwineStandoffM);
  } else if (kind == "subcut") {
    scen = swine_subcutaneous_scenario(calib::kSwineStandoffM);
  } else {
    scen = air_scenario(args.get_num("distance", 2.0));
  }
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(n);
  cfg.reader.averaging_periods =
      static_cast<std::size_t>(args.get_num("averaging", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 99)));
  const auto r = run_gen2_session(scen, tag, cfg, rng);
  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("scenario", scen.name);
    w.field("tag", tag.antenna.name());
    w.field("antennas", n);
    w.field("powered", r.powered);
    w.field("command_decoded", r.command_decoded);
    w.field("rn16_decoded", r.rn16_decoded);
    w.field("preamble_correlation", r.preamble_correlation);
    w.field("peak_envelope_v", r.peak_envelope_v);
    w.field("peak_rail_v", r.peak_rail_v);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return r.rn16_decoded ? 0 : 1;
  }
  std::printf("scenario %s, %s, %zu antennas\n", scen.name.c_str(),
              tag.antenna.name().c_str(), n);
  std::printf("powered=%s decoded=%s corr=%.2f env=%.2fV rail=%.2fV\n",
              r.powered ? "yes" : "no", r.rn16_decoded ? "yes" : "no",
              r.preamble_correlation, r.peak_envelope_v, r.peak_rail_v);
  return r.rn16_decoded ? 0 : 1;
}

int cmd_vitals(const Args& args) {
  const int rounds = static_cast<int>(args.get_num("rounds", 5));
  WaveformSessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  cfg.charge_time_s = 0.2;
  cfg.reader.averaging_periods = 10;
  Rng rng(4242);
  WaveformSession session(cfg, rng);
  int ok = 0;
  for (int k = 0; k < rounds; ++k) {
    Scenario scen = swine_gastric_scenario(calib::kSwineStandoffM,
                                           rng.uniform(0.0, 0.05));
    scen.orientation_rad = rng.uniform(0.0, kPi);
    session.new_trial(rng);
    const auto r =
        session.run_sensor_read(scen, standard_tag(), k * 10.0, rng);
    if (r.read_ok) {
      ++ok;
      std::printf("round %d: T=%.2f C, pH=%.2f, P=%.1f mmHg\n", k,
                  r.temperature_c, r.ph, r.pressure_mmhg);
    } else {
      std::printf("round %d: %s\n", k,
                  r.powered ? "uplink/access lost" : "below threshold");
    }
  }
  std::printf("vitals read %d/%d rounds\n", ok, rounds);
  return ok > 0 ? 0 : 1;
}

int cmd_safety(const Args& args) {
  const auto n = static_cast<std::size_t>(args.get_num("antennas", 8));
  const double duty = args.get_num("duty", 0.1);
  const double distance = args.get_num("distance", 1.0);
  const auto r = assess_exposure(n, dbm_to_watts(calib::kTxPowerDbm),
                                 calib::kTxGainDbi, distance, media::skin(),
                                 calib::kCibCenterHz, duty);
  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("antennas", n);
    w.field("duty", duty);
    w.field("skin_distance_m", distance);
    w.field("avg_density_w_per_m2", r.avg_density_w_per_m2);
    w.field("peak_density_w_per_m2", r.peak_density_w_per_m2);
    w.field("surface_sar_w_per_kg", r.surface_sar_w_per_kg);
    w.field("eirp_dbm", r.eirp_dbm);
    w.field("mpe_ok", r.mpe_ok);
    w.field("sar_ok", r.sar_ok);
    w.field("eirp_ok", r.eirp_ok);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }
  std::printf("%zu antennas, duty %.2f, skin at %.2f m:\n", n, duty,
              distance);
  std::printf("  avg %.3f W/m^2 (MPE %s), peak %.1f W/m^2, SAR %.4f W/kg "
              "(%s), EIRP %.1f dBm (%s)\n",
              r.avg_density_w_per_m2, r.mpe_ok ? "ok" : "VIOLATION",
              r.peak_density_w_per_m2, r.surface_sar_w_per_kg,
              r.sar_ok ? "ok" : "VIOLATION", r.eirp_dbm,
              r.eirp_ok ? "ok" : "over Part-15 cap");
  return 0;
}

int cmd_deploy(const Args& args) {
  const auto tag = tag_from(args);
  const std::string kind = args.get("scenario", "water");
  Scenario scen;
  if (kind == "air") {
    scen = air_scenario(args.get_num("distance", 2.0));
  } else if (kind == "gastric") {
    scen = swine_gastric_scenario(calib::kSwineStandoffM);
  } else if (kind == "subcut") {
    scen = swine_subcutaneous_scenario(calib::kSwineStandoffM);
  } else {
    scen = water_tank_scenario(args.get_num("depth", 0.10),
                               calib::kRangeSetupStandoffM);
  }
  DeploymentRequirements req;
  req.min_reads_per_minute = args.get_num("reads-per-minute", 1.0);
  req.burst_energy_j = args.get_num("burst-uj", 3.0) * 1e-6;
  req.max_antennas =
      static_cast<std::size_t>(args.get_num("max-antennas", 10));
  Rng rng(static_cast<std::uint64_t>(args.get_num("seed", 5)));
  const auto plan = plan_deployment(scen, tag, req, rng);
  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("scenario", scen.name);
    w.field("tag", tag.antenna.name());
    w.field("feasible", plan.feasible);
    w.field("antennas", plan.antennas);
    w.field("power_up_probability", plan.power_up_probability);
    w.field("energy_per_period_j", plan.energy_per_period_j);
    w.field("reads_per_minute", plan.expected_reads_per_minute);
    w.field("limiting_factor", plan.limiting_factor);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("deployment for %s / %s:\n  %s\n", scen.name.c_str(),
                tag.antenna.name().c_str(), describe(plan).c_str());
  }
  return plan.feasible ? 0 : 1;
}

bool write_file(const std::string& path, const std::string& text);

/// Build the requested figure campaign. Unknown bench => empty name.
CampaignSpec campaign_from(const Args& args) {
  const std::string bench = args.get("bench", "fig9");
  const auto trials = static_cast<std::size_t>(args.get_num("trials", 150));
  if (bench == "fig9") return fig9_campaign(trials);
  if (bench == "fig13") {
    return fig13_campaign(
        trials, static_cast<std::size_t>(args.get_num("range-trials", 15)));
  }
  if (bench == "x13") {
    return x13_campaign(static_cast<std::size_t>(args.get_num("trials", 48)));
  }
  return {};
}

/// Emit the merged results (file / stdout / summary line), shared by the
/// coordinator and the standalone merge subcommand.
int emit_campaign_results(const Args& args, const CampaignReport& report,
                          const std::string& sink_label) {
  const std::string results = report.results_json();
  const std::string out = args.get("out", "");
  if (!out.empty() && !write_file(out, results)) return 1;
  if (args.has("json")) {
    std::printf("%s\n", results.c_str());
    return 0;
  }
  std::printf("campaign %s: %zu cells (%zu computed, %zu resumed, "
              "%zu cache hits) -> %s\n",
              report.name.c_str(), report.cells_total, report.cells_computed,
              report.cells_resumed, report.cache_hits,
              out.empty() ? sink_label.c_str() : out.c_str());
  return 0;
}

int cmd_campaign(const Args& args) {
  const std::string sub =
      args.positional.empty() ? "run" : args.positional.front();
  const CampaignSpec spec = campaign_from(args);
  if (spec.name.empty()) {
    std::fprintf(stderr,
                 "ivnet campaign: unknown --bench '%s' "
                 "(expected fig9|fig13|x13)\n",
                 args.get("bench", "fig9").c_str());
    return 2;
  }
  const std::string journal =
      args.get("journal", "campaign_" + spec.name + ".jsonl");
  const auto shards = static_cast<std::size_t>(
      std::max(1.0, args.get_num("shards", 1)));
  ShardOptions shard_options;
  shard_options.journal_path = journal;
  shard_options.n_shards = shards;

  if (sub == "status") {
    // Report journal coverage without evaluating anything. With --shards,
    // coverage counts a cell done when ANY shard journal holds it.
    std::vector<JournalEntry> entries;
    if (shards > 1) {
      for (std::size_t k = 0; k < shards; ++k) {
        for (auto& entry :
             read_campaign_journal(shard_journal_path(journal, k))) {
          entries.push_back(std::move(entry));
        }
      }
    } else {
      entries = read_campaign_journal(journal);
    }
    std::size_t done = 0;
    for (const auto& cell : spec.cells) {
      const std::uint64_t hash = cell.content_hash();
      for (const auto& entry : entries) {
        if (entry.hash == hash) {
          ++done;
          break;
        }
      }
    }
    if (args.has("json")) {
      JsonWriter w;
      w.begin_object();
      w.field("campaign", spec.name);
      w.field("journal", journal);
      w.field("shards", shards);
      w.field("cells_total", spec.cells.size());
      w.field("cells_done", done);
      w.field("journal_records", entries.size());
      w.end_object();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("campaign %s: %zu/%zu cells journaled in %s (%zu shards)\n",
                  spec.name.c_str(), done, spec.cells.size(), journal.c_str(),
                  shards);
    }
    return 0;
  }

  if (sub == "worker") {
    // One shard's worker, runnable (and killable) as its own process — the
    // coordinator forks these, and ci.sh SIGKILLs one mid-run.
    if (!args.has("shard")) {
      std::fprintf(stderr, "ivnet campaign worker: --shard K required\n");
      return 2;
    }
    const auto shard =
        static_cast<std::size_t>(args.get_num("shard", 0));
    try {
      const ShardWorkerReport report =
          run_campaign_shard(spec, shard_options, shard);
      std::printf("campaign %s shard %zu/%zu: %zu owned, %zu computed "
                  "(%zu stolen, %zu from cache), %zu resumed\n",
                  spec.name.c_str(), report.shard, shards, report.cells_owned,
                  report.cells_computed, report.cells_stolen,
                  report.cells_from_cache, report.cells_resumed);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ivnet campaign worker: %s\n", e.what());
      return 1;
    }
  }

  if (sub == "merge") {
    const ShardMergeReport merged = merge_campaign_shards(spec, shard_options);
    if (!merged.complete()) {
      std::fprintf(stderr,
                   "ivnet campaign merge: %zu cells missing from the shard "
                   "journals (resume with --shards %zu to fill them)\n",
                   merged.cells_missing, shards);
      return 1;
    }
    return emit_campaign_results(args, merged.report, journal);
  }

  if (sub != "run" && sub != "resume") {
    std::fprintf(stderr,
                 "ivnet campaign: unknown subcommand '%s' "
                 "(expected run|status|resume|worker|merge)\n",
                 sub.c_str());
    return 2;
  }

  // `run --fresh` discards the checkpoint; `resume` never does.
  const bool fresh = sub == "run" && args.has("fresh");

  if (shards <= 1) {
    CampaignOptions options;
    options.journal_path = journal;
    options.fresh = fresh;
    const CampaignReport report = run_campaign(spec, options);
    return emit_campaign_results(args, report, journal);
  }

  // Coordinator: start a fresh claims generation, fork one worker process
  // per shard, wait, then merge the shard journals in spec order. A dead or
  // failed worker leaves holes the merge reports; `campaign resume --shards
  // N` re-runs the fleet over the surviving journals.
  shard_options.fresh = fresh;
  reset_campaign_claims(shard_options);
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids;
  for (std::size_t k = 0; k < shards; ++k) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Worker child: compute, then exit without running the parent's
      // artifact-writing tail (std::_Exit skips atexit and stdio flush —
      // nothing buffered here; the journal is already fsync'd).
      int rc = 1;
      try {
        run_campaign_shard(spec, shard_options, k);
        rc = 0;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ivnet campaign shard %zu: %s\n", k, e.what());
      }
      std::_Exit(rc);
    }
    if (pid < 0) {
      std::fprintf(stderr, "ivnet campaign: fork failed for shard %zu\n", k);
      break;  // wait for the workers that did start, then report holes
    }
    pids.push_back(pid);
  }
  bool workers_ok = pids.size() == shards;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      workers_ok = false;
    }
  }

  const ShardMergeReport merged = merge_campaign_shards(spec, shard_options);
  if (!merged.complete() || !workers_ok) {
    std::fprintf(stderr,
                 "ivnet campaign: sharded %s incomplete (%zu cells missing, "
                 "workers %s) — `ivnet campaign resume --shards %zu` to "
                 "finish\n",
                 sub.c_str(), merged.cells_missing,
                 workers_ok ? "ok" : "failed", shards);
    return 1;
  }
  if (!args.has("json")) {
    std::printf("campaign %s: merged %zu shards (%zu cells stolen)\n",
                spec.name.c_str(), shards, merged.cells_stolen);
  }
  return emit_campaign_results(args, merged.report, journal);
}

bool read_file(const std::string& path, std::string& out);

/// One `top`-style status line from the rolling windows at time `now_s`.
void print_follow_line(obs::ServiceTelemetry& telemetry, double now_s) {
  std::fprintf(stderr,
               "[t=%8.2fs] rps %8.1f  shed %6.1f/s | wait p50 %8.3fms "
               "p99 %8.3fms | svc p99 %8.3fms | 60s rps %8.1f\n",
               now_s, telemetry.completed().rate_over(1.0, now_s),
               telemetry.shed().rate_over(1.0, now_s),
               telemetry.queue_wait().quantile_over(1.0, now_s, 0.50) * 1e3,
               telemetry.queue_wait().quantile_over(1.0, now_s, 0.99) * 1e3,
               telemetry.service_time().quantile_over(1.0, now_s, 0.99) * 1e3,
               telemetry.completed().rate_over(60.0, now_s));
}

int cmd_serve(const Args& args) {
  const auto workers =
      static_cast<std::size_t>(std::max(1.0, args.get_num("workers", 4)));
  const auto queue_depth =
      static_cast<std::size_t>(std::max(2.0, args.get_num("queue-depth", 256)));
  const double rate = std::max(1e-3, args.get_num("rate", 500.0));
  const double duration_s = args.get_num("duration", 0.0);
  auto requests =
      static_cast<std::size_t>(std::max(1.0, args.get_num("requests", 1000)));

  // 2-state MMPP over the decode template: calm (0.5x) and surge (1.5x)
  // around the requested mean rate, sticky states so bursts last ~10
  // arrivals. The schedule is deterministic in --seed alone.
  svc::LoadState calm;
  calm.rate_rps = 0.5;
  calm.trials = static_cast<std::uint32_t>(std::max(1.0, args.get_num("trials", 1)));
  calm.antennas = static_cast<std::uint16_t>(std::max(1.0, args.get_num("antennas", 2)));
  calm.snr_db = args.get_num("snr", 14.0);
  calm.medium_loss_db = args.get_num("loss", 0.0);
  svc::LoadState surge = calm;
  surge.rate_rps = 1.5;

  svc::LoadGenConfig load;
  load.states = {calm, surge};
  load.transition = {0.9, 0.1, 0.1, 0.9};
  load.seed = static_cast<std::uint64_t>(args.get_num("seed", 41));
  load.rate_scale = rate;
  if (duration_s > 0.0) {
    // Duration-bounded: oversample the schedule, then cut it at the clock.
    load.requests = static_cast<std::size_t>(rate * duration_s * 2.0) + 64;
  } else {
    load.requests = requests;
  }
  auto schedule = svc::generate_schedule(load);
  if (duration_s > 0.0) {
    std::size_t n = 0;
    while (n < schedule.size() && schedule[n].t_s <= duration_s) ++n;
    schedule.resize(n);
  }

  svc::ServiceConfig config;
  config.workers = workers;
  config.queue_depth = queue_depth;
  config.plan_journal_path = args.get("plan-journal", "");

  // Live telemetry bundle: rolling windows + exemplars when any consumer
  // asked for them, flight recorder when a dump path is given. The sim
  // clock (default) attributes ingests to offered schedule time, so the
  // emitted series and exemplar set are deterministic in --seed; wall
  // mode is the live-operations view, sampled by a background thread.
  const std::string telemetry_out = args.get("telemetry-out", "");
  const std::string exemplars_out = args.get("exemplars-out", "");
  const std::string flight_out = args.get("flight-out", "");
  const bool follow = args.has("follow");
  const double interval_s =
      std::max(0.05, args.get_num("telemetry-interval", 1.0));
  const bool sim_clock = args.get("telemetry-clock", "sim") != "wall";
  const bool want_telemetry =
      !telemetry_out.empty() || !exemplars_out.empty() || follow ||
      !flight_out.empty();
  std::optional<obs::ServiceTelemetry> telemetry;
  std::optional<obs::FlightRecorder> flight;
  if (want_telemetry) {
    obs::TelemetryConfig telemetry_config;
    telemetry_config.epoch_s = std::min(1.0, interval_s);
    telemetry.emplace(telemetry_config);
    config.telemetry = &*telemetry;
  }
  if (!flight_out.empty()) {
    flight.emplace(workers + 1);
    config.flight = &*flight;
    // Fatal-signal forensics: a crash mid-run still leaves a trace behind.
    obs::FlightRecorder::install_crash_handler(
        &*flight, (flight_out + ".crash").c_str());
  }
  config.telemetry_clock =
      sim_clock ? svc::TelemetryClock::kSim : svc::TelemetryClock::kWall;

  svc::LatencyCollector collector;
  svc::InventoryService service(config, collector.sink());

  // Wall-clock sampler: one time-series record (and optional --follow
  // line) per interval while the replay runs.
  std::string series;
  std::atomic<bool> sampler_stop{false};
  std::thread sampler;
  if (want_telemetry && !sim_clock) {
    sampler = std::thread([&] {
      while (!sampler_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
        const double now_s = service.wall_time_s();
        series += telemetry->sample_json(now_s);
        series += '\n';
        if (follow) print_follow_line(*telemetry, now_s);
      }
    });
  }

  svc::ReplayResult replay;
  const bool closed = args.has("closed-loop");
  if (closed) {
    const auto window = static_cast<std::size_t>(
        std::max(1.0, args.get_num("closed-loop", 4.0 * workers)));
    replay = svc::run_closed_loop(service, collector, schedule, window);
  } else {
    replay = svc::run_open_loop(service, schedule,
                                std::max(1e-6, args.get_num("time-scale", 1.0)));
  }
  service.stop();  // graceful: drains every accepted request
  if (sampler.joinable()) {
    sampler_stop.store(true, std::memory_order_release);
    sampler.join();
  }
  if (want_telemetry && sim_clock) {
    // Post-hoc series on the sim clock: samples at the interval grid
    // covering the schedule span. Byte-stable run-to-run for one seed.
    const double span =
        schedule.empty() ? 0.0 : schedule.back().t_s;
    const std::size_t samples = static_cast<std::size_t>(span / interval_s) + 1;
    for (std::size_t k = 1; k <= samples; ++k) {
      const double now_s = static_cast<double>(k) * interval_s;
      series += telemetry->sample_json(now_s);
      series += '\n';
      if (follow) print_follow_line(*telemetry, now_s);
    }
  }
  if (flight) {
    // Disarm before the recorder goes out of scope.
    obs::FlightRecorder::install_crash_handler(nullptr, nullptr);
  }

  const std::size_t completed = collector.completed();
  const double span_s = schedule.empty() ? 0.0 : schedule.back().t_s;
  const double throughput =
      replay.wall_s > 0.0 ? static_cast<double>(completed) / replay.wall_s : 0.0;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                static_cast<unsigned long long>(collector.digest()));

  bool artifacts_ok = true;
  if (!telemetry_out.empty()) {
    artifacts_ok &= write_file(telemetry_out, series);
  }
  if (!exemplars_out.empty()) {
    artifacts_ok &= write_file(exemplars_out, telemetry->exemplars_jsonl());
  }
  if (!flight_out.empty()) {
    // On-demand dump; the same document the anomaly/crash paths produce.
    artifacts_ok &= write_file(flight_out, flight->dump_json());
  }

  if (args.has("json")) {
    JsonWriter w;
    w.begin_object();
    w.field("workers", workers);
    w.field("queue_depth", service.queue_capacity());
    w.field("mode", closed ? "closed-loop" : "open-loop");
    w.field("offered_rate_rps", rate);
    w.field("schedule_span_s", span_s);
    w.field("submitted", replay.submitted);
    w.field("accepted", replay.accepted);
    w.field("rejected", replay.rejected);
    w.field("completed", completed);
    w.field("succeeded_sessions",
            static_cast<std::size_t>(collector.succeeded_sessions()));
    w.field("wall_s", replay.wall_s);
    w.field("throughput_rps", throughput);
    w.field("queue_wait_p50_s", collector.queue_wait_quantile(0.50));
    w.field("queue_wait_p99_s", collector.queue_wait_quantile(0.99));
    w.field("service_p50_s", collector.service_quantile(0.50));
    w.field("service_p99_s", collector.service_quantile(0.99));
    w.field("latency_p99_s", collector.latency_quantile(0.99));
    w.field("sim_elapsed_total_s", collector.sim_elapsed_total_s());
    w.field("digest", digest_hex);
    if (want_telemetry) {
      w.field("anomalies", static_cast<std::size_t>(service.anomalies()));
      w.field("exemplars", telemetry->exemplars().size());
    }
    if (flight) {
      w.field("flight_events",
              static_cast<std::size_t>(flight->total_events()));
    }
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("serve (%s): %zu workers, queue %zu, %.0f req/s offered\n",
                closed ? "closed-loop" : "open-loop", workers,
                service.queue_capacity(), rate);
    std::printf("  %zu submitted, %zu accepted, %zu rejected, %zu completed "
                "in %.2f s (%.0f req/s)\n",
                replay.submitted, replay.accepted, replay.rejected, completed,
                replay.wall_s, throughput);
    std::printf("  queue wait p50/p99: %.3f / %.3f ms, service p50/p99: "
                "%.3f / %.3f ms\n",
                collector.queue_wait_quantile(0.50) * 1e3,
                collector.queue_wait_quantile(0.99) * 1e3,
                collector.service_quantile(0.50) * 1e3,
                collector.service_quantile(0.99) * 1e3);
    std::printf("  response digest %s\n", digest_hex);
    if (want_telemetry) {
      std::printf("  anomalies %llu, exemplars retained %zu\n",
                  static_cast<unsigned long long>(service.anomalies()),
                  telemetry->exemplars().size());
    }
  }
  // Every accepted request must have completed: the drain guarantee.
  if (completed != replay.accepted) return 1;
  return artifacts_ok ? 0 : 1;
}

int cmd_replay_exemplar(const Args& args) {
  const std::string in = args.get(
      "in", args.positional.empty() ? "" : args.positional.front());
  if (in.empty()) {
    std::fprintf(stderr,
                 "ivnet replay-exemplar: --in FILE required (JSONL from "
                 "`ivnet serve --exemplars-out`)\n");
    return 2;
  }
  std::string text;
  if (!read_file(in, text)) {
    std::fprintf(stderr, "ivnet replay-exemplar: cannot read %s\n",
                 in.c_str());
    return 2;
  }
  std::vector<obs::Exemplar> exemplars;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    obs::Exemplar exemplar;
    if (obs::parse_exemplar_line(line, exemplar)) {
      exemplars.push_back(exemplar);
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  if (args.has("id")) {
    const auto want = static_cast<std::uint64_t>(args.get_num("id", 0));
    std::vector<obs::Exemplar> keep;
    for (const obs::Exemplar& e : exemplars) {
      if (e.id == want) keep.push_back(e);
    }
    exemplars = std::move(keep);
  } else if (args.has("index")) {
    const auto k = static_cast<std::size_t>(args.get_num("index", 0));
    if (k >= exemplars.size()) {
      std::fprintf(stderr,
                   "ivnet replay-exemplar: --index %zu out of range "
                   "(%zu exemplars)\n",
                   k, exemplars.size());
      return 2;
    }
    exemplars = {exemplars[k]};
  }
  if (exemplars.empty()) {
    std::fprintf(stderr, "ivnet replay-exemplar: no exemplars selected\n");
    return 2;
  }

  // Re-execute through the exact service code path. The response is a pure
  // function of (request, seed): default link template + any batch size
  // reproduce the captured bytes, whatever the capturing service's worker
  // count or queue depth were. kPlan's optimizer parallel_for runs inline,
  // matching the worker-thread environment.
  ScopedInlineParallel inline_parallel;
  svc::ServiceConfig config;
  DspWorkspace workspace;
  std::size_t matched = 0;
  JsonWriter w;
  w.begin_object();
  w.key("replays").begin_array();
  for (const obs::Exemplar& exemplar : exemplars) {
    svc::Request request;
    request.kind = static_cast<svc::RequestKind>(exemplar.kind);
    request.trials = exemplar.trials;
    request.antennas = static_cast<std::uint16_t>(exemplar.antennas);
    request.id = exemplar.id;
    request.seed = exemplar.seed;
    request.snr_db = exemplar.snr_db;
    request.medium_loss_db = exemplar.medium_loss_db;
    svc::StageTimings stages;
    const auto start_at = std::chrono::steady_clock::now();
    const svc::Response response =
        svc::execute_request(config, request, workspace, {}, &stages);
    const double replay_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start_at)
                                .count();
    const std::uint64_t hash = svc::response_hash(response);
    const bool match = hash == exemplar.response_hash;
    matched += match ? 1 : 0;
    char expected_hex[32], actual_hex[32];
    std::snprintf(expected_hex, sizeof(expected_hex), "%016llx",
                  static_cast<unsigned long long>(exemplar.response_hash));
    std::snprintf(actual_hex, sizeof(actual_hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    if (args.has("json")) {
      w.begin_object();
      w.field("id", static_cast<std::size_t>(exemplar.id));
      w.field("kind", static_cast<int>(exemplar.kind));
      w.field("trials", static_cast<std::size_t>(exemplar.trials));
      w.field("expected_hash", expected_hex);
      w.field("actual_hash", actual_hex);
      w.field("match", match);
      w.field("captured_latency_s", exemplar.total_latency_s());
      w.field("replay_s", replay_s);
      w.end_object();
    } else {
      std::printf("id %llu kind %u trials %u: captured %.3f ms "
                  "(wait %.3f + svc %.3f), replay %.3f ms, hash %s %s\n",
                  static_cast<unsigned long long>(exemplar.id), exemplar.kind,
                  exemplar.trials, exemplar.total_latency_s() * 1e3,
                  exemplar.queue_wait_s * 1e3, exemplar.service_s * 1e3,
                  replay_s * 1e3, actual_hex,
                  match ? "MATCH" : "MISMATCH");
    }
  }
  w.end_array();
  w.field("replayed", exemplars.size());
  w.field("matched", matched);
  w.end_object();
  if (args.has("json")) {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%zu/%zu exemplars reproduced their response hash\n", matched,
                exemplars.size());
  }
  return matched == exemplars.size() ? 0 : 1;
}

int cmd_help() {
  std::printf(
      "ivnet — In-Vivo Networking (SIGCOMM'18) reproduction CLI\n\n"
      "  plan     [--antennas N] [--trials K] [--moves M] [--restarts R]\n"
      "           [--seed S] [--journal FILE] [--out FILE] [--json]\n"
      "           Eq. 10 planner via the content-hashed plan store (an\n"
      "           identical request re-plans for free: zero evaluations,\n"
      "           byte-identical plan JSON — `--out` files cmp equal)\n"
      "  media    [--json]                  dielectric property table\n"
      "  range    --tag std|mini --medium air|water [--antennas N]\n"
      "  session  --scenario air|water|gastric|subcut [--tag std|mini]\n"
      "           [--antennas N] [--distance M|--depth M] [--json]\n"
      "  vitals   [--rounds K]              gastric sensor-read dialogues\n"
      "  safety   [--antennas N] [--duty D] [--distance M] [--json]\n"
      "  deploy   --scenario air|water|gastric|subcut [--tag std|mini]\n"
      "           [--depth M] [--reads-per-minute R] [--json]\n"
      "  campaign run|status|resume|worker|merge --bench fig9|fig13|x13\n"
      "           [--journal FILE] [--out FILE] [--trials N]\n"
      "           [--range-trials N] [--fresh] [--json]\n"
      "           [--shards N]   run/resume fork N worker processes, each\n"
      "                          journaling <journal>.shard<k>.jsonl, then\n"
      "                          merge (byte-identical to --shards 1)\n"
      "           worker --shard K --shards N   one shard's worker process\n"
      "           merge  --shards N             merge shard journals only\n"
      "  serve    [--workers N] [--queue-depth D] [--requests N|--duration S]\n"
      "           [--rate R] [--trials K] [--snr DB] [--closed-loop [C]]\n"
      "           [--seed S] [--json]   MMPP load against the service\n"
      "           [--telemetry-out FILE]      rolling-window JSONL series\n"
      "           [--telemetry-interval S]    sample period (default 1 s)\n"
      "           [--telemetry-clock sim|wall] window clock (default sim)\n"
      "           [--exemplars-out FILE]      K-slowest exemplars (JSONL)\n"
      "           [--flight-out FILE]         flight-recorder Chrome trace\n"
      "           [--follow]                  top-style live status lines\n"
      "           [--plan-journal FILE]       durable kPlan plan store\n"
      "  replay-exemplar --in FILE [--id N | --index K] [--json]\n"
      "           re-execute captured exemplars; response hash must match\n\n"
      "global: --metrics-out FILE  --trace-out FILE  --trace-clock sim|wall\n"
      "        --batch-size K   batched lockstep trial pipeline (K trials\n"
      "                         per batch; bitwise-identical to scalar)\n");
  return 0;
}

/// Read `path` into `out`; returns false on open failure.
bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

/// Write `text` to `path`; returns false (with a message) on failure.
bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ivnet: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

int dispatch(const Args& args) {
  if (args.command == "plan") return cmd_plan(args);
  if (args.command == "media") return cmd_media(args);
  if (args.command == "range") return cmd_range(args);
  if (args.command == "session") return cmd_session(args);
  if (args.command == "vitals") return cmd_vitals(args);
  if (args.command == "safety") return cmd_safety(args);
  if (args.command == "deploy") return cmd_deploy(args);
  if (args.command == "campaign") return cmd_campaign(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "replay-exemplar") return cmd_replay_exemplar(args);
  return cmd_help();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  // Batched trial pipeline: the flag overrides the IVNET_BATCH environment
  // default for every sweep this process runs (output bytes do not change).
  if (args.has("batch-size")) {
    const double k = args.get_num("batch-size", 1.0);
    if (k < 1.0) {
      std::fprintf(stderr, "ivnet: --batch-size must be >= 1\n");
      return 2;
    }
    set_default_batch_size(static_cast<std::size_t>(k));
  }

  // Telemetry sink: any command runs instrumented when asked for artifacts.
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  obs::MetricsRegistry registry;
  obs::Tracer tracer(args.get("trace-clock", "wall") == "sim"
                         ? obs::TraceClock::kSim
                         : obs::TraceClock::kWall);
  obs::Sink sink;
  if (!metrics_out.empty()) sink.metrics = &registry;
  if (!trace_out.empty()) sink.tracer = &tracer;
  obs::install(sink);

  int rc = dispatch(args);

  obs::install_null();
  if (!metrics_out.empty() && !write_file(metrics_out, registry.snapshot_json()))
    rc = rc == 0 ? 1 : rc;
  if (!trace_out.empty() && !write_file(trace_out, tracer.to_json()))
    rc = rc == 0 ? 1 : rc;
  return rc;
}
